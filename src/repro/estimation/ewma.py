"""Exponentially-weighted moving average with initialisation-bias correction.

Used by the online rate estimators: request rate λ and mean item size s̄
drift in non-stationary workloads, and the threshold ``p_th = f̂′λ̂s̄̂/b``
should track them.  The bias correction (à la Adam) divides by
``1 − (1−α)ⁿ`` so early estimates are unbiased rather than dragged toward
the zero initial value.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = ["EWMA"]


class EWMA:
    """``v ← (1−α)·v + α·x`` with bias-corrected :attr:`value`.

    >>> e = EWMA(alpha=0.5)
    >>> e.update(10.0)
    >>> e.value
    10.0
    >>> e.update(0.0)
    >>> round(e.value, 4)    # (0.5*10 + 0.25*0)/0.75
    6.6667
    """

    __slots__ = ("alpha", "_raw", "_updates")

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ParameterError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self._raw = 0.0
        self._updates = 0

    def update(self, x: float) -> None:
        if math.isnan(x):
            raise ParameterError("EWMA received NaN")
        self._raw = (1.0 - self.alpha) * self._raw + self.alpha * float(x)
        self._updates += 1

    @property
    def count(self) -> int:
        return self._updates

    @property
    def value(self) -> float:
        """Bias-corrected estimate; NaN before any update."""
        if self._updates == 0:
            return float("nan")
        correction = 1.0 - (1.0 - self.alpha) ** self._updates
        return self._raw / correction

    def reset(self) -> None:
        self._raw = 0.0
        self._updates = 0
