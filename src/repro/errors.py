"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ParameterError(ReproError, ValueError):
    """An analytical/system parameter is out of its valid domain.

    Raised e.g. for negative bandwidth, hit ratios outside ``[0, 1]`` or a
    non-positive request rate.
    """


class StabilityError(ReproError, ArithmeticError):
    """A queueing formula was evaluated outside its stability region.

    The M/G/1-PS response-time formula ``r = x / (1 - rho)`` is meaningful
    only for utilisation ``rho < 1``; the paper's equations (10), (11), (18),
    (19) and (27) additionally require the *post-prefetch* utilisation to be
    below one (conditions (12.3) / (20.3)).  This error is raised when a
    caller requests strict evaluation (``on_unstable="raise"``) of an
    operating point that violates those conditions.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an invalid internal state."""


class NodeFailure(SimulationError):
    """A proxy node crashed while a transfer it served was in flight.

    Raised into every generator waiting on the dead node's uplink or peer
    link when a fault-injection ``proxy-fail``/``ring-shrink`` event drains
    the node (:meth:`repro.sim.node.ProxyNode.drain`).  The request path
    catches it and fails over to the item's new owner or the origin; it
    never escapes a well-formed simulation.
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment or simulation configuration is inconsistent."""


class TraceFormatError(ReproError, ValueError):
    """A workload trace file is malformed or has an unsupported schema."""
