"""Declarative scenario engine: YAML/JSON scenarios → validated schema →
compiled :class:`~repro.sim.config.SimulationConfig` sweep grids.

The schema layer (:mod:`repro.scenario.schema`) parses and validates a
scenario document with precise error paths; the compile layer
(:mod:`repro.scenario.compile`) turns a validated
:class:`~repro.scenario.schema.ScenarioSpec` into core config objects and
expands its sweep grid into :class:`~repro.sim.sweep.SweepPoint` lists.
"""

from repro.scenario.compile import (
    apply_override,
    compile_config,
    compile_faults,
    compile_topology,
    compile_workload,
    expand_points,
)
from repro.scenario.schema import (
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    parse_scenario,
)

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "load_scenario",
    "parse_scenario",
    "compile_config",
    "compile_faults",
    "compile_topology",
    "compile_workload",
    "apply_override",
    "expand_points",
]
