"""Compile validated scenarios into core config objects and sweep grids.

The schema layer (:mod:`repro.scenario.schema`) guarantees types and
ranges; this layer is a thin, mechanical translation:

* :func:`compile_workload` / :func:`compile_topology` /
  :func:`compile_config` — build :class:`~repro.workload.sessions.WorkloadSpec`,
  :class:`~repro.network.topology.TopologyConfig` and
  :class:`~repro.sim.config.SimulationConfig` passing **only** the fields
  the scenario actually set (``None`` in the schema means "inherit the
  core default"), so core defaults stay defined in exactly one place.
* :func:`apply_override` — set one dotted-path field
  (``system.policy``, ``topology.cooperation.mode``, ...) on a compiled
  config immutably via nested :func:`dataclasses.replace`.
* :func:`expand_points` — cartesian-product the scenario's sweep grid
  (declaration order) into :class:`~repro.sim.sweep.SweepPoint` lists
  ready for :meth:`~repro.sim.sweep.SweepExecutor.run`.

Core-level :class:`~repro.errors.ConfigurationError` raised while a
scenario value is being applied (cross-field rules the schema cannot see,
e.g. ``duration must exceed warmup``) is re-raised as a
:class:`~repro.scenario.schema.ScenarioError` carrying the scenario path
responsible, so every failure an author can cause points back into their
document.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.network.topology import CooperationConfig, TopologyConfig
from repro.scenario.schema import (
    FaultsSchema,
    PhaseSchema,
    ScenarioError,
    ScenarioSpec,
    TopologySchema,
    WorkloadSchema,
)
from repro.sim.config import SimulationConfig
from repro.sim.faults import FaultEvent, FaultSchedule
from repro.sim.sweep import SweepPoint
from repro.workload.phases import PhaseSpec
from repro.workload.sessions import WorkloadSpec

__all__ = [
    "compile_workload",
    "compile_topology",
    "compile_faults",
    "compile_config",
    "apply_override",
    "expand_points",
]


def _set_fields(target: dict[str, Any], schema: Any, fields: Sequence[str]) -> None:
    """Copy every non-None schema field into a constructor-kwarg dict."""
    for name in fields:
        value = getattr(schema, name)
        if value is not None:
            target[name] = value


def _compile_phase(phase: PhaseSchema) -> PhaseSpec:
    return PhaseSpec(
        duration=phase.duration,
        rate_multiplier=phase.rate_multiplier,
        zipf_exponent=phase.zipf_exponent,
        popularity_shift=phase.popularity_shift,
    )


def compile_workload(schema: WorkloadSchema, *, path: str = "workload") -> WorkloadSpec:
    """Build a :class:`WorkloadSpec` from the scenario's workload section."""
    kwargs: dict[str, Any] = {}
    _set_fields(
        kwargs,
        schema,
        (
            "num_clients",
            "request_rate",
            "catalog_size",
            "zipf_exponent",
            "follow_probability",
            "mean_item_size",
        ),
    )
    if schema.phases is not None:
        kwargs["phases"] = tuple(_compile_phase(p) for p in schema.phases)
    try:
        return WorkloadSpec(**kwargs)
    except ConfigurationError as exc:
        raise ScenarioError(path, str(exc)) from exc


def compile_topology(schema: TopologySchema, *, path: str = "topology") -> TopologyConfig:
    """Build a :class:`TopologyConfig` from the scenario's topology section."""
    kwargs: dict[str, Any] = {}
    _set_fields(kwargs, schema, ("num_proxies", "routing", "hash_vnodes"))
    if schema.cooperation is not None:
        coop_kwargs: dict[str, Any] = {}
        _set_fields(
            coop_kwargs,
            schema.cooperation,
            ("mode", "peer_bandwidth", "probe_latency", "admit_remote_hits"),
        )
        try:
            kwargs["cooperation"] = CooperationConfig(**coop_kwargs)
        except ConfigurationError as exc:
            raise ScenarioError(f"{path}.cooperation", str(exc)) from exc
    try:
        return TopologyConfig(**kwargs)
    except ConfigurationError as exc:
        raise ScenarioError(path, str(exc)) from exc


def compile_faults(schema: FaultsSchema, *, path: str = "faults") -> FaultSchedule:
    """Build a :class:`FaultSchedule` from the scenario's faults section."""
    kwargs: dict[str, Any] = {
        "events": tuple(
            FaultEvent(time=e.at, kind=e.kind, node=e.node) for e in schema.events
        )
    }
    if schema.migration is not None:
        kwargs["migration"] = schema.migration
    try:
        return FaultSchedule(**kwargs)
    except ConfigurationError as exc:
        raise ScenarioError(path, str(exc)) from exc


def compile_config(spec: ScenarioSpec) -> SimulationConfig:
    """Compile a whole scenario into its base :class:`SimulationConfig`.

    Sweep-grid overrides are *not* applied here — the base config is the
    grid's origin; :func:`expand_points` derives every grid point from it
    with :func:`apply_override`.
    """
    kwargs: dict[str, Any] = {
        "workload": compile_workload(spec.workload),
        "topology": compile_topology(spec.topology),
    }
    _set_fields(
        kwargs,
        spec.system,
        (
            "bandwidth",
            "cache_policy",
            "cache_capacity",
            "predictor",
            "policy",
            "assumed_hit_ratio",
            "duration",
            "warmup",
            "seed",
            "prediction_limit",
            "client_backend",
            "node_backend",
            "node_workers",
        ),
    )
    if spec.system.predictor_params is not None:
        kwargs["predictor_params"] = dict(spec.system.predictor_params)
    if spec.system.policy_params is not None:
        kwargs["policy_params"] = dict(spec.system.policy_params)
    if spec.faults is not None:
        kwargs["faults"] = compile_faults(spec.faults)
    try:
        return SimulationConfig(**kwargs)
    except ConfigurationError as exc:
        # Cross-field fault checks (node on/off ring, time < duration, ...)
        # run inside SimulationConfig and already name ``faults.events[i]``;
        # route those back to the faults section, everything else to system.
        section = "faults" if str(exc).startswith("faults") else "system"
        raise ScenarioError(section, str(exc)) from exc


# ----------------------------------------------------------------------
# Dotted-path overrides + grid expansion
# ----------------------------------------------------------------------
def _replace_field(obj: Any, name: str, value: Any, *, path: str) -> Any:
    if not dataclasses.is_dataclass(obj):
        raise ScenarioError(
            path, f"cannot descend into non-config value {obj!r}"
        )
    if name not in {f.name for f in dataclasses.fields(obj)}:
        known = sorted(f.name for f in dataclasses.fields(obj))
        raise ScenarioError(
            path, f"unknown config field {name!r}; known: {known}"
        )
    try:
        return dataclasses.replace(obj, **{name: value})
    except ConfigurationError as exc:
        raise ScenarioError(path, str(exc)) from exc


def apply_override(
    config: SimulationConfig, dotted: str, value: Any, *, path: str | None = None
) -> SimulationConfig:
    """Return a copy of ``config`` with one dotted-path field replaced.

    ``dotted`` is rooted at a scenario section: ``system.<field>`` sets a
    :class:`SimulationConfig` field directly, ``workload.<field>`` /
    ``topology.<field>`` (arbitrarily nested, e.g.
    ``topology.cooperation.mode``) rebuild the nested dataclass chain via
    :func:`dataclasses.replace`, revalidating at every level.  ``path``
    labels errors (defaults to ``dotted`` itself).
    """
    label = path if path is not None else dotted
    parts = dotted.split(".")
    root, rest = parts[0], parts[1:]
    if not rest:
        raise ScenarioError(
            label, f"override path needs '<section>.<field>', got {dotted!r}"
        )
    if root == "system":
        chain_root = config
        chain_rest = rest
    elif root in ("workload", "topology"):
        chain_root = config
        chain_rest = parts  # descend through the config's own field
    else:
        raise ScenarioError(
            label,
            f"override must be rooted at workload/system/topology, got {dotted!r}",
        )
    # Walk down collecting the objects, then rebuild bottom-up.
    objs = [chain_root]
    for name in chain_rest[:-1]:
        obj = objs[-1]
        if not dataclasses.is_dataclass(obj) or name not in {
            f.name for f in dataclasses.fields(obj)
        }:
            raise ScenarioError(label, f"unknown config path {dotted!r}")
        objs.append(getattr(obj, name))
    rebuilt = _replace_field(objs[-1], chain_rest[-1], value, path=label)
    for obj, name in zip(reversed(objs[:-1]), reversed(chain_rest[:-1])):
        rebuilt = _replace_field(obj, name, rebuilt, path=label)
    return rebuilt


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_points(
    spec: ScenarioSpec,
    *,
    base_config: SimulationConfig | None = None,
    replications: int | None = None,
) -> list[SweepPoint]:
    """Expand a scenario's sweep grid into sweep points.

    The cartesian product follows grid *declaration order* (first key
    varies slowest).  Point keys are ``leaf=value`` pairs joined with
    ``/`` (e.g. ``policy=none/num_proxies=2``); each point's ``meta``
    carries ``{leaf: value}`` for every grid axis plus
    ``{"scenario": spec.name}``.  A scenario without a grid yields one
    point keyed by the scenario name.

    ``base_config`` substitutes a pre-adjusted base (e.g. an experiment's
    ``fast`` variant); ``replications`` overrides the sweep section's.
    """
    config = base_config if base_config is not None else compile_config(spec)
    reps = replications if replications is not None else spec.sweep.replications
    base_seed = spec.sweep.base_seed
    grid = spec.sweep.grid
    if not grid:
        return [
            SweepPoint(
                key=spec.name,
                config=config,
                replications=reps,
                base_seed=base_seed,
                meta={"scenario": spec.name},
            )
        ]
    axes = list(grid.items())
    points: list[SweepPoint] = []
    combos: list[list[tuple[str, Any]]] = [[]]
    for dotted, values in axes:
        combos = [combo + [(dotted, v)] for combo in combos for v in values]
    for combo in combos:
        point_config = config
        meta: dict[str, Any] = {"scenario": spec.name}
        key_parts: list[str] = []
        for dotted, value in combo:
            point_config = apply_override(
                point_config, dotted, value, path=f"sweep.grid.{dotted}"
            )
            leaf = dotted.rsplit(".", 1)[-1]
            meta[leaf] = value
            key_parts.append(f"{leaf}={_format_value(value)}")
        points.append(
            SweepPoint(
                key="/".join(key_parts),
                config=point_config,
                replications=reps,
                base_seed=base_seed,
                meta=meta,
            )
        )
    return points
