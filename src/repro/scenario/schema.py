"""Validated declarative scenario schema (YAML/JSON → dataclasses).

A scenario document is a mapping with up to six sections::

    name: flash-crowd              # required
    description: ...               # optional free text
    workload:                      # -> WorkloadSpec fields
      num_clients: 8
      request_rate: 40.0
      phases:                      # -> PhaseSpec list
        - {duration: 60, rate_multiplier: 1.0}
        - {duration: 20, rate_multiplier: 4.0}
    system:                        # -> SimulationConfig fields
      policy: threshold-dynamic
      cache_capacity: 40
    topology:                      # -> TopologyConfig fields
      num_proxies: 2
      cooperation: {mode: owner-probe}
    sweep:                         # optional grid expansion
      replications: 3
      base_seed: 17
      grid:
        system.policy: [none, threshold-dynamic]
        topology.num_proxies: [1, 2, 4]
    faults:                        # optional mid-run topology mutations
      migration: cooperative       # cold (default) | cooperative
      events:
        - {at: 40.0, kind: proxy-fail, node: 1}
        - {at: 80.0, kind: proxy-recover, node: 1}

Validation philosophy: **every** mistake — wrong type, out-of-range
value, unknown key, bad enum name — raises :class:`ScenarioError` whose
message starts with the dotted path of the offending field
(``workload.phases[1].duration: ...``), never a bare stack trace from
deep inside the core.  Fields left out inherit the core dataclass
defaults at compile time (the schema stores ``None``, the compiler omits
the constructor argument), so defaults live in exactly one place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.network.topology import COOPERATION_MODES, ROUTING_NAMES
from repro.sim.config import (
    CLIENT_BACKENDS,
    NODE_BACKENDS,
    POLICY_NAMES,
    PREDICTOR_NAMES,
)
from repro.sim.faults import FAULT_KINDS, MIGRATION_MODES

__all__ = [
    "ScenarioError",
    "PhaseSchema",
    "WorkloadSchema",
    "CooperationSchema",
    "TopologySchema",
    "SystemSchema",
    "SweepSchema",
    "FaultEventSchema",
    "FaultsSchema",
    "ScenarioSpec",
    "parse_scenario",
    "load_scenario",
]

#: cache replacement policies accepted by ``system.cache_policy``
#: (mirrors :data:`repro.cache.interaction.CACHE_POLICIES`, imported
#: lazily at validation time so the schema module stays import-light)
def _cache_policy_names() -> tuple[str, ...]:
    from repro.cache.interaction import CACHE_POLICIES

    return tuple(sorted(CACHE_POLICIES))


class ScenarioError(ConfigurationError):
    """A scenario document failed validation.

    ``path`` is the dotted location of the offending field
    (``workload.phases[1].duration``); the message always leads with it.
    """

    def __init__(self, path: str, problem: str) -> None:
        self.path = path
        super().__init__(f"{path}: {problem}" if path else problem)


# ----------------------------------------------------------------------
# Cursor-based validation plumbing
# ----------------------------------------------------------------------
class _Node:
    """Validation cursor over one mapping of the document.

    ``take(key, parse)`` consumes a key (parsing its value with the
    child's path attached); ``finish()`` afterwards rejects any keys the
    schema never consumed, listing what would have been allowed — the
    error a typo'd field name gets.
    """

    def __init__(self, data: Any, path: str) -> None:
        if not isinstance(data, Mapping):
            raise ScenarioError(
                path or "<document>",
                f"expected a mapping, got {type(data).__name__}",
            )
        self.data = data
        self.path = path
        self._taken: set[str] = set()

    def child_path(self, key: str) -> str:
        return f"{self.path}.{key}" if self.path else key

    def take(self, key: str, parse: Callable[[Any, str], Any], default=None):
        self._taken.add(key)
        if key not in self.data:
            return default
        return parse(self.data[key], self.child_path(key))

    def require(self, key: str, parse: Callable[[Any, str], Any]):
        self._taken.add(key)
        if key not in self.data:
            raise ScenarioError(
                self.child_path(key), "required field is missing"
            )
        return parse(self.data[key], self.child_path(key))

    def finish(self) -> None:
        unknown = sorted(set(map(str, self.data)) - self._taken)
        if unknown:
            raise ScenarioError(
                self.path or "<document>",
                f"unknown key(s) {unknown}; allowed: {sorted(self._taken)}",
            )


def _str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, f"expected a string, got {value!r}")
    return value


def _bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected a boolean, got {value!r}")
    return value


def _int(value: Any, path: str) -> int:
    # bool is an int subclass; "num_clients: true" must not validate.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"expected an integer, got {value!r}")
    return value


def _float(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(path, f"expected a number, got {value!r}")
    return float(value)


def _positive_int(value: Any, path: str) -> int:
    parsed = _int(value, path)
    if parsed < 1:
        raise ScenarioError(path, f"must be >= 1, got {parsed}")
    return parsed


def _positive_float(value: Any, path: str) -> float:
    parsed = _float(value, path)
    if parsed <= 0:
        raise ScenarioError(path, f"must be > 0, got {parsed!r}")
    return parsed


def _nonnegative_float(value: Any, path: str) -> float:
    parsed = _float(value, path)
    if parsed < 0:
        raise ScenarioError(path, f"must be >= 0, got {parsed!r}")
    return parsed


def _fraction(value: Any, path: str) -> float:
    parsed = _float(value, path)
    if not 0.0 <= parsed <= 1.0:
        raise ScenarioError(path, f"must be in [0, 1], got {parsed!r}")
    return parsed


def _choice(names: Sequence[str]) -> Callable[[Any, str], str]:
    def parse(value: Any, path: str) -> str:
        parsed = _str(value, path)
        if parsed not in names:
            raise ScenarioError(
                path, f"unknown name {parsed!r}; known: {tuple(names)}"
            )
        return parsed

    return parse


def _params(value: Any, path: str) -> dict[str, Any]:
    """Free-form ``*_params`` mapping (string keys, scalar values)."""
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"expected a mapping, got {value!r}")
    out: dict[str, Any] = {}
    for key, val in value.items():
        if not isinstance(key, str):
            raise ScenarioError(path, f"parameter names must be strings, got {key!r}")
        if val is not None and not isinstance(val, (bool, int, float, str)):
            raise ScenarioError(
                f"{path}.{key}", f"expected a scalar, got {val!r}"
            )
        out[key] = val
    return out


# ----------------------------------------------------------------------
# Schema dataclasses (None = inherit the core default at compile time)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseSchema:
    duration: float
    rate_multiplier: float = 1.0
    zipf_exponent: float | None = None
    popularity_shift: int = 0


@dataclass(frozen=True)
class WorkloadSchema:
    num_clients: int | None = None
    request_rate: float | None = None
    catalog_size: int | None = None
    zipf_exponent: float | None = None
    follow_probability: float | None = None
    mean_item_size: float | None = None
    phases: tuple[PhaseSchema, ...] | None = None


@dataclass(frozen=True)
class CooperationSchema:
    mode: str | None = None
    peer_bandwidth: float | None = None
    probe_latency: float | None = None
    admit_remote_hits: bool | None = None


@dataclass(frozen=True)
class TopologySchema:
    num_proxies: int | None = None
    routing: str | None = None
    hash_vnodes: int | None = None
    cooperation: CooperationSchema | None = None


@dataclass(frozen=True)
class SystemSchema:
    bandwidth: float | None = None
    cache_policy: str | None = None
    cache_capacity: int | None = None
    predictor: str | None = None
    predictor_params: Mapping[str, Any] | None = None
    policy: str | None = None
    policy_params: Mapping[str, Any] | None = None
    assumed_hit_ratio: float | None = None
    duration: float | None = None
    warmup: float | None = None
    seed: int | None = None
    prediction_limit: int | None = None
    client_backend: str | None = None
    node_backend: str | None = None
    node_workers: int | None = None


@dataclass(frozen=True)
class FaultEventSchema:
    at: float
    kind: str
    node: int


@dataclass(frozen=True)
class FaultsSchema:
    events: tuple[FaultEventSchema, ...]
    migration: str | None = None


@dataclass(frozen=True)
class SweepSchema:
    replications: int = 3
    base_seed: int | None = None
    #: dotted config path -> list of values, grid declaration order
    grid: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario document."""

    name: str
    description: str = ""
    workload: WorkloadSchema = field(default_factory=WorkloadSchema)
    system: SystemSchema = field(default_factory=SystemSchema)
    topology: TopologySchema = field(default_factory=TopologySchema)
    sweep: SweepSchema = field(default_factory=SweepSchema)
    faults: FaultsSchema | None = None
    #: where the document came from ("<dict>" for in-memory specs)
    source: str = "<dict>"


# ----------------------------------------------------------------------
# Section parsers
# ----------------------------------------------------------------------
def _parse_phase(data: Any, path: str) -> PhaseSchema:
    node = _Node(data, path)
    phase = PhaseSchema(
        duration=node.require("duration", _positive_float),
        rate_multiplier=node.take("rate_multiplier", _positive_float, 1.0),
        zipf_exponent=node.take("zipf_exponent", _nonnegative_float),
        popularity_shift=node.take("popularity_shift", _int, 0),
    )
    node.finish()
    return phase


def _parse_phases(value: Any, path: str) -> tuple[PhaseSchema, ...]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ScenarioError(path, f"expected a list of phases, got {value!r}")
    if not value:
        raise ScenarioError(path, "needs at least one phase")
    return tuple(
        _parse_phase(entry, f"{path}[{i}]") for i, entry in enumerate(value)
    )


def _parse_workload(data: Any, path: str) -> WorkloadSchema:
    node = _Node(data, path)
    workload = WorkloadSchema(
        num_clients=node.take("num_clients", _positive_int),
        request_rate=node.take("request_rate", _positive_float),
        catalog_size=node.take("catalog_size", _positive_int),
        zipf_exponent=node.take("zipf_exponent", _nonnegative_float),
        follow_probability=node.take("follow_probability", _fraction),
        mean_item_size=node.take("mean_item_size", _positive_float),
        phases=node.take("phases", _parse_phases),
    )
    node.finish()
    return workload


def _parse_cooperation(data: Any, path: str) -> CooperationSchema:
    node = _Node(data, path)
    coop = CooperationSchema(
        mode=node.take("mode", _choice(COOPERATION_MODES)),
        peer_bandwidth=node.take("peer_bandwidth", _positive_float),
        probe_latency=node.take("probe_latency", _nonnegative_float),
        admit_remote_hits=node.take("admit_remote_hits", _bool),
    )
    node.finish()
    return coop


def _parse_topology(data: Any, path: str) -> TopologySchema:
    node = _Node(data, path)
    topology = TopologySchema(
        num_proxies=node.take("num_proxies", _positive_int),
        routing=node.take("routing", _choice(ROUTING_NAMES)),
        hash_vnodes=node.take("hash_vnodes", _positive_int),
        cooperation=node.take("cooperation", _parse_cooperation),
    )
    node.finish()
    return topology


def _parse_system(data: Any, path: str) -> SystemSchema:
    node = _Node(data, path)
    system = SystemSchema(
        bandwidth=node.take("bandwidth", _positive_float),
        cache_policy=node.take("cache_policy", _choice(_cache_policy_names())),
        cache_capacity=node.take("cache_capacity", _positive_int),
        predictor=node.take("predictor", _choice(PREDICTOR_NAMES)),
        predictor_params=node.take("predictor_params", _params),
        policy=node.take("policy", _choice(POLICY_NAMES)),
        policy_params=node.take("policy_params", _params),
        assumed_hit_ratio=node.take("assumed_hit_ratio", _fraction),
        duration=node.take("duration", _positive_float),
        warmup=node.take("warmup", _nonnegative_float),
        seed=node.take("seed", _int),
        prediction_limit=node.take("prediction_limit", _positive_int),
        client_backend=node.take("client_backend", _choice(CLIENT_BACKENDS)),
        node_backend=node.take("node_backend", _choice(NODE_BACKENDS)),
        node_workers=node.take("node_workers", _positive_int),
    )
    node.finish()
    return system


#: config sections a sweep-grid path may root at
_GRID_ROOTS = ("workload", "system", "topology")


def _parse_grid(value: Any, path: str) -> dict[str, tuple[Any, ...]]:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"expected a mapping, got {value!r}")
    grid: dict[str, tuple[Any, ...]] = {}
    for key, values in value.items():
        key_path = f"{path}.{key}"
        if not isinstance(key, str) or not key:
            raise ScenarioError(path, f"grid keys must be dotted paths, got {key!r}")
        root = key.split(".", 1)[0]
        if root not in _GRID_ROOTS or "." not in key:
            raise ScenarioError(
                key_path,
                f"grid paths must be '<section>.<field>' with section in "
                f"{_GRID_ROOTS}, got {key!r}",
            )
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ScenarioError(
                key_path, f"expected a list of values, got {values!r}"
            )
        if not values:
            raise ScenarioError(key_path, "needs at least one value")
        for i, entry in enumerate(values):
            if entry is not None and not isinstance(
                entry, (bool, int, float, str)
            ):
                raise ScenarioError(
                    f"{key_path}[{i}]", f"expected a scalar, got {entry!r}"
                )
        grid[key] = tuple(values)
    return grid


def _parse_fault_event(data: Any, path: str) -> FaultEventSchema:
    node = _Node(data, path)
    event = FaultEventSchema(
        at=node.require("at", _positive_float),
        kind=node.require("kind", _choice(FAULT_KINDS)),
        node=node.require("node", _int),
    )
    node.finish()
    if event.node < 0:
        raise ScenarioError(f"{path}.node", f"must be >= 0, got {event.node}")
    return event


def _parse_fault_events(value: Any, path: str) -> tuple[FaultEventSchema, ...]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ScenarioError(path, f"expected a list of fault events, got {value!r}")
    if not value:
        raise ScenarioError(path, "needs at least one event")
    return tuple(
        _parse_fault_event(entry, f"{path}[{i}]")
        for i, entry in enumerate(value)
    )


def _parse_faults(data: Any, path: str) -> FaultsSchema:
    node = _Node(data, path)
    faults = FaultsSchema(
        events=node.require("events", _parse_fault_events),
        migration=node.take("migration", _choice(MIGRATION_MODES)),
    )
    node.finish()
    return faults


def _parse_sweep(data: Any, path: str) -> SweepSchema:
    node = _Node(data, path)
    sweep = SweepSchema(
        replications=node.take("replications", _positive_int, 3),
        base_seed=node.take("base_seed", _int),
        grid=node.take("grid", _parse_grid, {}),
    )
    node.finish()
    return sweep


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def parse_scenario(data: Any, *, source: str = "<dict>") -> ScenarioSpec:
    """Validate a scenario document (any mapping) into a :class:`ScenarioSpec`.

    Raises :class:`ScenarioError` with the dotted path of the first
    offending field; a valid document round-trips losslessly.
    """
    node = _Node(data, "")
    spec = ScenarioSpec(
        name=node.require("name", _str),
        description=node.take("description", _str, ""),
        workload=node.take("workload", _parse_workload, WorkloadSchema()),
        system=node.take("system", _parse_system, SystemSchema()),
        topology=node.take("topology", _parse_topology, TopologySchema()),
        sweep=node.take("sweep", _parse_sweep, SweepSchema()),
        faults=node.take("faults", _parse_faults),
        source=source,
    )
    node.finish()
    if not spec.name:
        raise ScenarioError("name", "must not be empty")
    return spec


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate a scenario file (``.yaml``/``.yml``/``.json``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(str(path), f"cannot read scenario file: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(str(path), f"invalid JSON: {exc}") from exc
    elif suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - PyYAML is baked in
            raise ScenarioError(
                str(path), "YAML scenarios need PyYAML (use .json instead)"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(str(path), f"invalid YAML: {exc}") from exc
    else:
        raise ScenarioError(
            str(path),
            f"unknown scenario suffix {suffix!r} (expected .yaml/.yml/.json)",
        )
    return parse_scenario(data, source=str(path))
