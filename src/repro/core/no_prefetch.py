"""Baseline (cache only, no prefetch) performance — paper §2.3, eqs. (4)–(5).

With no prefetching, requests miss the cache with probability ``f′ = 1 − h′``
and reach the shared server at rate ``f′λ``, giving utilisation
``ρ′ = f′λs̄/b``.  The average retrieval time of a *fetched* item and the
average access time over *all* requests (hits cost zero) follow directly
from the M/G/1-PS response formula:

    ``r̄′ = s̄ / (b (1 − ρ′))``                                   (eq. 4)
    ``t̄′ = (1 − h′) r̄′ = f′ s̄ / (b − f′ λ s̄)``                  (eq. 5)

These closed forms are the yardstick against which every prefetching policy
is measured (``G = t̄′ − t̄``).
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import SystemParameters
from repro.core.queueing import OnUnstable, resolve_unstable, stability_mask

__all__ = [
    "base_utilization",
    "retrieval_time",
    "access_time",
    "retrieval_time_per_request",
]


def base_utilization(
    params: SystemParameters,
    *,
    hit_ratio: np.ndarray | float | None = None,
    bandwidth: np.ndarray | float | None = None,
    mean_item_size: np.ndarray | float | None = None,
) -> np.ndarray | float:
    """``ρ′ = f′λs̄/b`` with optional vectorised overrides.

    Each override replaces the corresponding scalar in ``params``; passing
    arrays broadcasts, enabling e.g. the Figure 1 sweep over ``(s, b)``
    grids without constructing thousands of parameter objects.
    """
    h = params.hit_ratio if hit_ratio is None else np.asarray(hit_ratio, dtype=float)
    b = params.bandwidth if bandwidth is None else np.asarray(bandwidth, dtype=float)
    s = (
        params.mean_item_size
        if mean_item_size is None
        else np.asarray(mean_item_size, dtype=float)
    )
    rho = (1.0 - np.asarray(h, dtype=float)) * params.request_rate * s / b
    if np.ndim(rho) == 0:
        return float(rho)
    return rho


def retrieval_time(
    params: SystemParameters,
    *,
    on_unstable: OnUnstable = "nan",
) -> float:
    """Mean retrieval time of one demand-fetched item, ``r̄′`` (eq. 4)."""
    rho = params.base_utilization
    value = params.mean_item_size / (params.bandwidth * (1.0 - rho)) if rho < 1 else np.nan
    out = resolve_unstable(
        np.asarray(value), np.asarray(rho < 1.0), on_unstable, context="r_bar_prime (eq. 4)"
    )
    return float(out)


def access_time(
    params: SystemParameters,
    *,
    on_unstable: OnUnstable = "nan",
) -> float:
    """Mean access time over all requests, ``t̄′ = f′s̄/(b − f′λs̄)`` (eq. 5).

    Cache hits contribute zero; the remaining fraction ``f′`` pays ``r̄′``.
    """
    f = params.fault_ratio
    denom = params.capacity_headroom  # b - f' lambda s
    stable = np.asarray(denom > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        value = np.asarray(f * params.mean_item_size / denom)
    out = resolve_unstable(value, stable, on_unstable, context="t_bar_prime (eq. 5)")
    return float(out)


def retrieval_time_per_request(
    params: SystemParameters,
    *,
    on_unstable: OnUnstable = "nan",
) -> float:
    """Server time consumed per *user request*, ``R′ = ρ′/(λ(1−ρ′))`` (eq. 26).

    ``R′`` counts only demand fetches (``n̄′(R) = f′`` items per request on
    average) and is the baseline for the excess-cost definition
    ``C = R − R′`` (eq. 23).
    """
    rho = params.base_utilization
    stable = np.asarray(rho < 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        value = np.asarray(rho / (params.request_rate * (1.0 - rho)))
    out = resolve_unstable(value, stable, on_unstable, context="R_prime (eq. 26)")
    return float(out)
