"""Model A — *evict zero-value items* (paper §2.2, §3.1).

Model A assumes the cache always contains inconsequential entries (items
with zero probability of future access) that can absorb evictions.  Each of
the ``n̄(F)`` items prefetched per request therefore adds its full access
probability ``p`` to the hit ratio:

    ``h = h′ + n̄(F) p``                                          (eq. 7)

which yields (for the derivation chain see
:class:`repro.core.interaction_base.PrefetchCacheModel`):

    ``t̄ = (f′ − n̄(F)p) s̄ / (b − f′λs̄ − n̄(F)(1 − p)λs̄)``         (eq. 10)
    ``G = n̄(F) s̄ (pb − f′λs̄) / ((b − f′λs̄)(b − f′λs̄ − n̄(F)(1−p)λs̄))``
                                                                  (eq. 11)
    ``p_th = f′λs̄/b = ρ′``                                        (eq. 13)

The sign of G is the sign of ``pb − f′λs̄`` (the other factors are positive
inside the stability region), hence the boxed conclusion of §3.1: prefetch
exclusively all items with ``p > ρ′``, with no further cap on how many
(condition 3 is implied by the feasibility bound ``n̄(F) ≤ f′/p``, eq. 14).
"""

from __future__ import annotations

import numpy as np

from repro.core.interaction_base import PrefetchCacheModel
from repro.core.parameters import SystemParameters
from repro.core.queueing import OnUnstable, resolve_unstable

__all__ = ["ModelA", "hit_ratio", "improvement", "threshold"]


def hit_ratio(
    params: SystemParameters,
    n_f: np.ndarray | float,
    p: np.ndarray | float,
) -> np.ndarray | float:
    """``h = h′ + n̄(F)p`` (eq. 7)."""
    out = params.hit_ratio + np.asarray(n_f, dtype=float) * np.asarray(p, dtype=float)
    if np.ndim(out) == 0:
        return float(out)
    return out


def threshold(params: SystemParameters) -> float:
    """``p_th = ρ′ = f′λs̄/b`` (eq. 13)."""
    return params.base_utilization


def improvement(
    params: SystemParameters,
    n_f: np.ndarray | float,
    p: np.ndarray | float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """Closed-form access improvement ``G`` (eq. 11).

    Outside the stability region (either ``ρ′ ≥ 1`` or condition (12.3)
    violated) eq. (11) is algebraically defined but physically meaningless
    — the queue has no steady state — so the ``on_unstable`` policy applies.
    """
    n_f_arr = np.asarray(n_f, dtype=float)
    p_arr = np.asarray(p, dtype=float)
    b = params.bandwidth
    s = params.mean_item_size
    lam = params.request_rate
    f = params.fault_ratio

    headroom = b - f * lam * s  # condition (12.2)
    post_headroom = headroom - n_f_arr * (1.0 - p_arr) * lam * s  # condition (12.3)
    numerator = n_f_arr * s * (p_arr * b - f * lam * s)
    stable = (headroom > 0.0) & (post_headroom > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        g = numerator / (headroom * post_headroom)
    return resolve_unstable(g, stable, on_unstable, context="model A G (eq. 11)")


class ModelA(PrefetchCacheModel):
    """Analytical prefetching model with zero-value eviction (paper §3.1).

    Examples
    --------
    >>> from repro.core.parameters import SystemParameters
    >>> m = ModelA(SystemParameters.paper_defaults())   # b=50, lam=30, s=1, h'=0
    >>> m.threshold()
    0.6
    >>> m.improvement(1.0, 0.9) > 0           # prefetching p=0.9 items pays off
    True
    >>> m.improvement(1.0, 0.4) < 0           # p below p_th=0.6 backfires
    True
    """

    name = "A"

    def hit_ratio(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        return hit_ratio(self.params, n_f, p)

    def threshold(self) -> float:
        return threshold(self.params)

    def improvement_closed_form(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        return improvement(self.params, n_f, p, on_unstable=on_unstable)

    def n_f_limit(self, p: np.ndarray | float) -> np.ndarray | float:
        """Stability cap from condition (12.3): ``n̄(F) < (b − f′λs̄)/((1−p)λs̄)``.

        At ``p = 1`` prefetches displace demand fetches one-for-one and the
        cap is infinite.
        """
        p_arr = np.asarray(p, dtype=float)
        lam = self.params.request_rate
        s = self.params.mean_item_size
        with np.errstate(divide="ignore"):
            out = self.params.capacity_headroom / ((1.0 - p_arr) * lam * s)
        out = np.where(p_arr >= 1.0, np.inf, out)
        if out.ndim == 0:
            return float(out)
        return out
