"""System parameters shared by all analytical models.

The paper (§2) describes a population of users behind a proxy issuing
requests at aggregate rate ``lam`` for items of mean size ``s_bar`` over a
shared network of bandwidth ``b``; without prefetching a fraction ``h_prime``
of requests hit the local cache.  :class:`SystemParameters` bundles those
primitives, validates their domains and derives the quantities every formula
needs (service time ``x = s̄/b``, no-prefetch utilisation ``ρ′ = f′λs̄/b``,
...).

All symbols follow the paper's appendix:

====================  =======================================================
attribute             paper symbol / meaning
====================  =======================================================
``bandwidth``         ``b`` — capacity of the shared server (bytes/s)
``request_rate``      ``λ`` — aggregate user request rate (requests/s)
``mean_item_size``    ``s̄`` — average item size (bytes)
``hit_ratio``         ``h′`` — cache hit ratio with *no* prefetching
``cache_size``        ``n̄(C)`` — mean number of cached items (model B only)
====================  =======================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ParameterError

__all__ = ["SystemParameters"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ParameterError(message)


@dataclass(frozen=True)
class SystemParameters:
    """Validated bundle of the paper's model primitives.

    Parameters
    ----------
    bandwidth:
        Shared server capacity ``b > 0``.  The paper's figures use
        ``b ∈ {50, 100, ..., 450}``.
    request_rate:
        Aggregate request rate ``λ > 0`` (the figures use ``λ = 30``).
    mean_item_size:
        Mean item size ``s̄ > 0`` (the figures use ``s̄ = 1``).
    hit_ratio:
        No-prefetch cache hit ratio ``h′ ∈ [0, 1)``.  ``h′ = 1`` would mean
        every request is served locally, leaving nothing to model.
    cache_size:
        Mean number of items resident in a user's cache, ``n̄(C)``.  Only
        model B (and the hybrid model AB) uses it; ``None`` is accepted for
        model-A-only work, mirroring the paper's remark (§6) that model A
        "has one less parameter".

    Examples
    --------
    >>> params = SystemParameters(bandwidth=50, request_rate=30,
    ...                           mean_item_size=1.0, hit_ratio=0.0)
    >>> params.base_utilization
    0.6
    >>> params.service_time
    0.02
    """

    bandwidth: float
    request_rate: float
    mean_item_size: float
    hit_ratio: float = 0.0
    cache_size: float | None = None

    def __post_init__(self) -> None:
        _require(
            math.isfinite(self.bandwidth) and self.bandwidth > 0,
            f"bandwidth b must be finite and > 0, got {self.bandwidth!r}",
        )
        _require(
            math.isfinite(self.request_rate) and self.request_rate > 0,
            f"request_rate lambda must be finite and > 0, got {self.request_rate!r}",
        )
        _require(
            math.isfinite(self.mean_item_size) and self.mean_item_size > 0,
            f"mean_item_size s must be finite and > 0, got {self.mean_item_size!r}",
        )
        _require(
            0.0 <= self.hit_ratio < 1.0,
            f"hit_ratio h' must lie in [0, 1), got {self.hit_ratio!r}",
        )
        if self.cache_size is not None:
            _require(
                math.isfinite(self.cache_size) and self.cache_size > 0,
                f"cache_size n(C) must be finite and > 0, got {self.cache_size!r}",
            )

    # ------------------------------------------------------------------
    # Derived quantities (paper appendix symbols)
    # ------------------------------------------------------------------
    @property
    def fault_ratio(self) -> float:
        """``f′ = 1 − h′`` — fraction of requests that miss the cache."""
        return 1.0 - self.hit_ratio

    @property
    def service_time(self) -> float:
        """``x = s̄ / b`` — server time to stream one average item (eq. 3)."""
        return self.mean_item_size / self.bandwidth

    @property
    def demand_rate(self) -> float:
        """``f′ λ`` — rate of requests that reach the server (demand fetches)."""
        return self.fault_ratio * self.request_rate

    @property
    def base_utilization(self) -> float:
        """``ρ′ = f′ λ s̄ / b`` — utilisation with no prefetching (below eq. 4)."""
        return self.demand_rate * self.service_time

    @property
    def is_stable(self) -> bool:
        """Whether the *no-prefetch* system is stable, ``ρ′ < 1`` (cond. 12.2)."""
        return self.base_utilization < 1.0

    @property
    def capacity_headroom(self) -> float:
        """``b − f′λs̄`` — spare capacity after demand fetches are served.

        This is the recurring denominator factor of eqs. (5), (11) and (19);
        it is positive exactly when :attr:`is_stable`.
        """
        return self.bandwidth - self.demand_rate * self.mean_item_size

    # ------------------------------------------------------------------
    # Convenience constructors / mutation
    # ------------------------------------------------------------------
    def with_(self, **changes: Any) -> "SystemParameters":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def require_cache_size(self) -> float:
        """Return ``n̄(C)``, raising :class:`ParameterError` when unset."""
        if self.cache_size is None:
            raise ParameterError(
                "this operation requires cache_size n(C); model B and model AB "
                "need the mean cache occupancy, see paper eq. (15)"
            )
        return self.cache_size

    @classmethod
    def paper_defaults(
        cls,
        *,
        bandwidth: float = 50.0,
        hit_ratio: float = 0.0,
        mean_item_size: float = 1.0,
        request_rate: float = 30.0,
        cache_size: float | None = None,
    ) -> "SystemParameters":
        """Parameters used throughout the paper's figures (s̄=1, λ=30, b=50)."""
        return cls(
            bandwidth=bandwidth,
            request_rate=request_rate,
            mean_item_size=mean_item_size,
            hit_ratio=hit_ratio,
            cache_size=cache_size,
        )
