"""Model AB — non-uniform eviction value (paper §6, "a more realistic model").

The paper sketches (without equations) a model AB in which every cached item
has a *possibly zero, non-uniform* contribution to ``h′``; a sensible cache
replacement policy evicts items whose contribution is *below average*, i.e.
below ``h′/n̄(C)``.  The results then fall "between those for models A and B".

We formalise that sketch with a single parameter
``eviction_value ∈ [0, 1]`` (written α): each evicted item is assumed to
contribute ``α · h′/n̄(C)`` to the hit ratio, so

    ``h = h′ − n̄(F) α h′/n̄(C) + n̄(F) p``

* α = 0 recovers model A (evictees were worthless),
* α = 1 recovers model B (evictees carried average value),
* 0 < α < 1 is the realistic in-between the paper argues for.

The derivation chain is unchanged, giving

    ``p_th = ρ′ + α h′/n̄(C)``

which interpolates eqs. (13) and (21) and makes the paper's §6 claims
(threshold gap at most ``1/n̄(C)``; bracketing) explicit and testable.
"""

from __future__ import annotations

import numpy as np

from repro.core.interaction_base import PrefetchCacheModel
from repro.core.parameters import SystemParameters
from repro.core.queueing import OnUnstable, resolve_unstable
from repro.errors import ParameterError

__all__ = ["ModelAB"]


class ModelAB(PrefetchCacheModel):
    """Interpolated prefetch-cache interaction (our formalisation of §6).

    Parameters
    ----------
    params:
        Operating point; ``cache_size`` is required unless ``eviction_value``
        is exactly 0 (in which case the model degenerates to model A and
        ``n̄(C)`` cancels).
    eviction_value:
        α — the evicted items' hit-ratio contribution as a fraction of the
        cache average ``h′/n̄(C)``.

    Examples
    --------
    >>> from repro.core.parameters import SystemParameters
    >>> params = SystemParameters.paper_defaults(hit_ratio=0.3, cache_size=10)
    >>> ModelAB(params, eviction_value=0.0).threshold()  # == model A
    0.42
    >>> round(ModelAB(params, eviction_value=1.0).threshold(), 3)  # == model B
    0.45
    """

    name = "AB"

    def __init__(self, params: SystemParameters, eviction_value: float = 0.5) -> None:
        if not 0.0 <= eviction_value <= 1.0:
            raise ParameterError(
                f"eviction_value alpha must lie in [0, 1], got {eviction_value!r}"
            )
        if eviction_value > 0.0:
            params.require_cache_size()
        super().__init__(params)
        self.eviction_value = float(eviction_value)

    # ------------------------------------------------------------------
    def _eviction_loss_per_item(self) -> float:
        """Hit-ratio contribution forfeited per evicted item, ``α h′/n̄(C)``."""
        if self.eviction_value == 0.0:
            return 0.0
        return self.eviction_value * self.params.hit_ratio / self.params.require_cache_size()

    def hit_ratio(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        n_f_arr = np.asarray(n_f, dtype=float)
        p_arr = np.asarray(p, dtype=float)
        out = (
            self.params.hit_ratio
            - n_f_arr * self._eviction_loss_per_item()
            + n_f_arr * p_arr
        )
        if np.ndim(out) == 0:
            return float(out)
        return out

    def threshold(self) -> float:
        """``p_th = ρ′ + α h′/n̄(C)`` — interpolates eqs. (13) and (21)."""
        return self.params.base_utilization + self._eviction_loss_per_item()

    def improvement_closed_form(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """Closed-form G following the eq. (19) pattern with loss ``α h′/n̄(C)``.

        Derivation mirrors the paper's: substitute the model-AB ``h`` into
        eqs. (8)–(10) and subtract from eq. (5).  Setting α ∈ {0, 1} recovers
        eqs. (11) and (19) exactly (tested).
        """
        n_f_arr = np.asarray(n_f, dtype=float)
        p_arr = np.asarray(p, dtype=float)
        b = self.params.bandwidth
        s = self.params.mean_item_size
        lam = self.params.request_rate
        f = self.params.fault_ratio
        loss = self._eviction_loss_per_item()

        headroom = b - f * lam * s
        post_headroom = headroom - n_f_arr * loss * lam * s - n_f_arr * (1.0 - p_arr) * lam * s
        numerator = n_f_arr * s * (p_arr * b - f * lam * s - b * loss)
        stable = (headroom > 0.0) & (post_headroom > 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            g = numerator / (headroom * post_headroom)
        return resolve_unstable(g, stable, on_unstable, context="model AB G")

    def n_f_limit(self, p: np.ndarray | float) -> np.ndarray | float:
        """Stability cap on ``n̄(F)``: condition-3 analogue for model AB."""
        p_arr = np.asarray(p, dtype=float)
        lam = self.params.request_rate
        s = self.params.mean_item_size
        drain = self._eviction_loss_per_item() + (1.0 - p_arr)
        with np.errstate(divide="ignore"):
            out = self.params.capacity_headroom / (lam * s * drain)
        out = np.where(drain <= 0.0, np.inf, out)
        if out.ndim == 0:
            return float(out)
        return out
