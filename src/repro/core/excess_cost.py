"""Excess retrieval cost and load impedance (paper §5, eqs. (23)–(27)).

Speculative prefetching necessarily fetches some items that are never used,
so the per-request *retrieval time* the server expends rises from ``R′`` to
``R``.  The paper defines the excess retrieval cost

    ``C = R − R′``                                               (eq. 23)

and, writing the utilisation as ``ρ = n̄(R)λs̄/b`` (eq. 24) with ``n̄(R)``
retrievals per user request, derives the model-agnostic closed form

    ``R = ρ / (λ(1 − ρ))``                                       (eq. 25)
    ``C = (ρ − ρ′) / (λ(1 − ρ)(1 − ρ′))``                        (eq. 27)

The formula exposes *load impedance*: ``∂C/∂ρ`` grows as ``1/(1−ρ)²``, so
prefetching the same item costs more when the system is already loaded.
"""

from __future__ import annotations

import numpy as np

from repro.core.queueing import OnUnstable, resolve_unstable

__all__ = [
    "retrieval_time_per_request",
    "excess_cost",
    "marginal_cost",
    "load_impedance_ratio",
]


def retrieval_time_per_request(
    rho: np.ndarray | float,
    request_rate: float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """``R = ρ/(λ(1 − ρ))`` — server time consumed per user request (eq. 25).

    General in the prefetch-cache interaction: any model enters only through
    its utilisation ``ρ``.
    """
    rho_arr = np.asarray(rho, dtype=float)
    stable = rho_arr < 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        r = rho_arr / (request_rate * (1.0 - rho_arr))
    return resolve_unstable(r, stable, on_unstable, context="R (eq. 25)")


def excess_cost(
    rho: np.ndarray | float,
    rho_prime: np.ndarray | float,
    request_rate: float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """``C = (ρ − ρ′)/(λ(1 − ρ)(1 − ρ′))`` (eq. 27).

    Parameters
    ----------
    rho:
        Utilisation *with* prefetching (eq. 8/16, or measured).
    rho_prime:
        Utilisation with no prefetching, ``ρ′ = f′λs̄/b``.
    request_rate:
        User request rate ``λ``.
    """
    rho_arr = np.asarray(rho, dtype=float)
    rho_p = np.asarray(rho_prime, dtype=float)
    stable = (rho_arr < 1.0) & (rho_p < 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        c = (rho_arr - rho_p) / (request_rate * (1.0 - rho_arr) * (1.0 - rho_p))
    return resolve_unstable(c, stable, on_unstable, context="C (eq. 27)")


def marginal_cost(
    rho: np.ndarray | float,
    request_rate: float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """``dR/dρ = 1/(λ(1 − ρ)²)`` — cost of one extra unit of load at load ρ.

    This derivative quantifies the paper's *load impedance* remark: fetching
    the same item is ``(1−ρ_low)²/(1−ρ_high)²`` times more expensive at the
    higher load.
    """
    rho_arr = np.asarray(rho, dtype=float)
    stable = rho_arr < 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        m = 1.0 / (request_rate * (1.0 - rho_arr) ** 2)
    return resolve_unstable(m, stable, on_unstable, context="dR/drho")


def load_impedance_ratio(
    rho_low: np.ndarray | float,
    rho_high: np.ndarray | float,
) -> np.ndarray | float:
    """Relative marginal cost of prefetching at ``rho_high`` vs ``rho_low``.

    Returns ``(1 − ρ_low)² / (1 − ρ_high)²`` (≥ 1 when ``ρ_high ≥ ρ_low``),
    NaN where either load is saturated.
    """
    lo = np.asarray(rho_low, dtype=float)
    hi = np.asarray(rho_high, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = ((1.0 - lo) / (1.0 - hi)) ** 2
    ratio = np.where((lo < 1.0) & (hi < 1.0), ratio, np.nan)
    if ratio.ndim == 0:
        return float(ratio)
    return ratio
