"""Analytical core: the paper's equations as validated, vectorised Python.

Layout
------
``parameters``
    :class:`SystemParameters` — the (b, λ, s̄, h′, n̄(C)) operating point.
``queueing``
    M/G/1 processor-sharing primitives (eq. 2–3).
``no_prefetch``
    Baseline access/retrieval times (eqs. 4–5, 26).
``model_a`` / ``model_b`` / ``model_ab``
    The prefetch–cache interaction models (§3.1, §3.2, §6).
``interaction_base``
    Shared derivation chain and positivity conditions ((12)/(20)).
``thresholds``
    The headline threshold rule (eqs. 13/21) and item selection.
``excess_cost``
    Excess retrieval cost and load impedance (§5, eq. 27).
``optimizer``
    Numerical audit of the threshold rule under heterogeneous probabilities.
``sweeps``
    Vectorised figure-grid evaluation.
"""

from repro.core.interaction_base import (
    PositivityConditions,
    PrefetchCacheModel,
    max_np,
)
from repro.core.model_a import ModelA
from repro.core.model_ab import ModelAB
from repro.core.model_b import ModelB
from repro.core.parameters import SystemParameters

__all__ = [
    "ModelA",
    "ModelAB",
    "ModelB",
    "PositivityConditions",
    "PrefetchCacheModel",
    "SystemParameters",
    "max_np",
]
