"""Prefetch-set optimisation — numerical audit of the paper's threshold rule.

The paper proves the threshold rule optimal for the homogeneous case (all
candidates share one access probability ``p``).  Real predictors emit
*heterogeneous* probabilities, so this module generalises the model-A access
time to an arbitrary candidate set ``S``:

    ``h(S)   = h′ + Σ_{i∈S} p_i``
    ``ρ(S)   = (1 − h(S) + |S|) λ s̄ / b``
    ``t̄(S)   = (1 − h(S)) · s̄ / (b (1 − ρ(S)))``
    ``G(S)   = t̄′ − t̄(S)``

and provides three solvers:

* :func:`threshold_set` — the paper's rule (take every ``p_i > ρ′``),
* :func:`greedy_set` — iteratively add the candidate with the best marginal
  gain while it is positive,
* :func:`exhaustive_set` — optimal by brute force (2^n subsets, n ≤ ~20).

The discrete marginal condition for adding item ``i`` to set ``S`` works out
to ``p_i · b > λ s̄ (f′(1 − p_i) + (p_i |S| − P_S))`` with ``P_S = Σ_{j∈S}
p_j``; for ``S = ∅`` this is exactly ``p_i > ρ′``.  For non-empty ``S`` the
rule is only *approximately* set-independent, so the threshold rule can be
marginally sub-optimal under heterogeneity — an effect the
``policy-ablation`` experiment quantifies (it is tiny in practice, which is
why the paper's conclusion stands).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.core import no_prefetch
from repro.core.parameters import SystemParameters
from repro.errors import ParameterError

__all__ = [
    "PrefetchPlan",
    "improvement_for_set",
    "threshold_set",
    "greedy_set",
    "exhaustive_set",
]


@dataclass(frozen=True)
class PrefetchPlan:
    """Result of a set optimisation.

    Attributes
    ----------
    selected:
        Indices into the candidate-probability sequence, sorted ascending.
    improvement:
        ``G`` achieved by the selected set (0.0 for the empty set).
    """

    selected: tuple[int, ...]
    improvement: float

    @property
    def size(self) -> int:
        return len(self.selected)


def _validate_probs(probabilities: Sequence[float]) -> np.ndarray:
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ParameterError("probabilities must be a 1-D sequence")
    if np.any((probs < 0.0) | (probs > 1.0)):
        raise ParameterError("access probabilities must lie in [0, 1]")
    return probs


def improvement_for_set(
    params: SystemParameters,
    probabilities: Sequence[float],
    selected: Sequence[int] | None = None,
) -> float:
    """Model-A improvement ``G(S)`` for a heterogeneous candidate set.

    ``selected=None`` selects every candidate.  Returns NaN when the chosen
    set drives the system out of its stability region (the plan is then
    infeasible, not merely unprofitable).
    """
    probs = _validate_probs(probabilities)
    if selected is None:
        chosen = probs
    else:
        idx = np.asarray(sorted(set(int(i) for i in selected)), dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= probs.size):
            raise ParameterError("selected indices out of range")
        chosen = probs[idx]
    mass = float(chosen.sum())
    count = float(chosen.size)
    if count == 0:
        return 0.0  # exact: no prefetching means G is identically zero
    if mass > params.fault_ratio + 1e-12:
        # More probability mass than future faults can absorb (cf. eq. 6).
        raise ParameterError(
            f"selected probability mass {mass:.4f} exceeds fault ratio "
            f"{params.fault_ratio:.4f}; violates max(np) feasibility (eq. 6)"
        )
    h = params.hit_ratio + mass
    rho = (1.0 - h + count) * params.request_rate * params.service_time
    if rho >= 1.0:
        return float("nan")
    t_prime = no_prefetch.access_time(params, on_unstable="nan")
    t = (1.0 - h) * params.mean_item_size / (params.bandwidth * (1.0 - rho))
    return float(t_prime - t)


def threshold_set(
    params: SystemParameters,
    probabilities: Sequence[float],
) -> PrefetchPlan:
    """The paper's rule: select every candidate with ``p_i > p_th = ρ′``.

    Selection honours the eq. (6) feasibility cap: the combined probability
    mass of selected items cannot exceed the fault ratio ``f′`` (otherwise
    the probability model is inconsistent), so candidates are admitted in
    descending-probability order while mass remains.
    """
    probs = _validate_probs(probabilities)
    p_th = params.base_utilization
    selected: list[int] = []
    mass = 0.0
    for i in np.argsort(-probs, kind="stable"):
        p_i = float(probs[i])
        if p_i > p_th and mass + p_i <= params.fault_ratio + 1e-12:
            selected.append(int(i))
            mass += p_i
    selected_t = tuple(sorted(selected))
    gain = improvement_for_set(params, probs, selected_t) if selected_t else 0.0
    return PrefetchPlan(selected=selected_t, improvement=float(gain))


def greedy_set(
    params: SystemParameters,
    probabilities: Sequence[float],
) -> PrefetchPlan:
    """Greedy marginal-gain selection.

    Repeatedly add the candidate whose inclusion raises ``G(S)`` the most;
    stop when no candidate has a positive (and stable) marginal gain.
    Candidates are considered in descending probability, which makes the
    greedy order deterministic.

    ``G(S)`` depends on ``S`` only through the selected probability mass
    ``P_S`` and count ``|S|``, so the selected mass is tracked incrementally
    and each candidate's marginal gain is evaluated in O(1): infeasible
    candidates (mass cap, instability) are filtered by the same two
    comparisons ``improvement_for_set`` would reject them with, without
    rebuilding the trial set or raising/catching ``ParameterError`` per
    (candidate × round) pair.
    """
    probs = _validate_probs(probabilities)
    remaining = [int(i) for i in np.argsort(-probs)]
    selected: list[int] = []
    mass = 0.0
    current = 0.0
    t_prime = no_prefetch.access_time(params, on_unstable="nan")
    rate, svc = params.request_rate, params.service_time
    mass_cap = params.fault_ratio + 1e-12
    improved = True
    while improved and remaining:
        improved = False
        best_idx: int | None = None
        best_gain = current
        count = float(len(selected) + 1)
        for i in remaining:
            trial_mass = mass + float(probs[i])
            if trial_mass > mass_cap:
                continue  # would exceed the max(np) feasibility mass (eq. 6)
            h = params.hit_ratio + trial_mass
            rho = (1.0 - h + count) * rate * svc
            if rho >= 1.0:
                continue  # out of the stability region: infeasible
            gain = t_prime - (1.0 - h) * params.mean_item_size / (
                params.bandwidth * (1.0 - rho)
            )
            if np.isfinite(gain) and gain > best_gain + 1e-15:
                best_gain = gain
                best_idx = i
        if best_idx is not None:
            selected.append(best_idx)
            remaining.remove(best_idx)
            mass += float(probs[best_idx])
            current = best_gain
            improved = True
    # Report the gain through the audited evaluator so the plan's
    # improvement is exactly what improvement_for_set(selected) returns.
    selected_t = tuple(sorted(selected))
    gain = improvement_for_set(params, probs, selected_t) if selected_t else 0.0
    return PrefetchPlan(selected=selected_t, improvement=float(gain))


def exhaustive_set(
    params: SystemParameters,
    probabilities: Sequence[float],
    *,
    max_candidates: int = 20,
) -> PrefetchPlan:
    """Optimal subset by brute force — O(2^n), guarded by ``max_candidates``."""
    probs = _validate_probs(probabilities)
    n = probs.size
    if n > max_candidates:
        raise ParameterError(
            f"exhaustive search over {n} candidates would enumerate 2^{n} "
            f"subsets; raise max_candidates explicitly if intended"
        )
    best: tuple[int, ...] = ()
    best_gain = 0.0
    indices = range(n)
    for k in range(1, n + 1):
        for combo in combinations(indices, k):
            try:
                gain = improvement_for_set(params, probs, combo)
            except ParameterError:
                continue
            if np.isfinite(gain) and gain > best_gain + 1e-15:
                best_gain = gain
                best = combo
    return PrefetchPlan(selected=tuple(best), improvement=float(best_gain))
