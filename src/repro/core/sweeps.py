"""Vectorised parameter sweeps behind the paper's figures.

Each function evaluates a closed form over the exact grid a figure uses and
returns a :class:`repro.analysis.series.SweepResult` ready for rendering or
CSV export.  The heavy lifting is numpy broadcasting — no Python loops over
grid points — per the scientific-Python optimisation guidance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.series import Series, SweepResult
from repro.core.excess_cost import excess_cost as _excess_cost
from repro.core.interaction_base import PrefetchCacheModel
from repro.core.model_a import ModelA
from repro.core.parameters import SystemParameters
from repro.core.thresholds import threshold_sweep

__all__ = [
    "threshold_vs_size",
    "improvement_vs_prefetch_count",
    "excess_cost_vs_prefetch_count",
    "improvement_vs_load",
]


def threshold_vs_size(
    params: SystemParameters,
    *,
    sizes: Sequence[float] | np.ndarray,
    bandwidths: Sequence[float] | np.ndarray,
    model: str = "A",
) -> SweepResult:
    """``p_th`` against item size ``s`` for a family of bandwidths (Figure 1).

    One series per bandwidth, labelled ``b = <value>`` as in the paper's
    legend.  Thresholds above 1 mean "nothing is worth prefetching"; they
    are kept in the data (the paper clips the plot axis at 1 instead).
    """
    grid = threshold_sweep(params, sizes=sizes, bandwidths=bandwidths, model=model)
    labels = [f"b = {b:g}" for b in np.asarray(bandwidths, dtype=float)]
    return SweepResult.from_grid(
        title=f"p_th vs s (model {model}, h'={params.hit_ratio:g})",
        x_label="s",
        y_label="p_th",
        x=np.asarray(sizes, dtype=float),
        grid=grid,
        labels=labels,
        params={
            "lambda": params.request_rate,
            "h_prime": params.hit_ratio,
            "model": model,
        },
    )


def improvement_vs_prefetch_count(
    model: PrefetchCacheModel,
    *,
    n_f_grid: Sequence[float] | np.ndarray,
    probabilities: Sequence[float] | np.ndarray,
    closed_form: bool = True,
) -> SweepResult:
    """``G`` against ``n̄(F)`` for a family of access probabilities (Figure 2).

    ``closed_form=True`` evaluates the paper's eq. (11)/(19); ``False`` uses
    the generic derivation from the hit-ratio map (the two agree — tested).
    Unstable points come back NaN.
    """
    n_f = np.asarray(n_f_grid, dtype=float)[np.newaxis, :]
    p = np.asarray(probabilities, dtype=float)[:, np.newaxis]
    if closed_form:
        grid = np.asarray(model.improvement_closed_form(n_f, p, on_unstable="nan"))
    else:
        grid = np.asarray(model.improvement(n_f, p, on_unstable="nan"))
    labels = [f"p = {pv:g}" for pv in np.asarray(probabilities, dtype=float)]
    prm = model.params
    return SweepResult.from_grid(
        title=f"G vs n(F) (model {model.name}, h'={prm.hit_ratio:g})",
        x_label="n(F)",
        y_label="G",
        x=np.asarray(n_f_grid, dtype=float),
        grid=grid,
        labels=labels,
        params={
            "s": prm.mean_item_size,
            "lambda": prm.request_rate,
            "b": prm.bandwidth,
            "h_prime": prm.hit_ratio,
            "model": model.name,
        },
    )


def excess_cost_vs_prefetch_count(
    model: PrefetchCacheModel,
    *,
    n_f_grid: Sequence[float] | np.ndarray,
    probabilities: Sequence[float] | np.ndarray,
) -> SweepResult:
    """Excess retrieval cost ``C`` against ``n̄(F)`` (Figure 3).

    Uses eq. (27) with the model's utilisation map; points where either the
    baseline or the prefetching system saturates return NaN.
    """
    n_f = np.asarray(n_f_grid, dtype=float)[np.newaxis, :]
    p = np.asarray(probabilities, dtype=float)[:, np.newaxis]
    prm = model.params
    rho = np.asarray(model.utilization(n_f, p))
    grid = np.asarray(
        _excess_cost(rho, prm.base_utilization, prm.request_rate, on_unstable="nan")
    )
    labels = [f"p = {pv:g}" for pv in np.asarray(probabilities, dtype=float)]
    return SweepResult.from_grid(
        title=f"C vs n(F) (model {model.name}, h'={prm.hit_ratio:g})",
        x_label="n(F)",
        y_label="C",
        x=np.asarray(n_f_grid, dtype=float),
        grid=grid,
        labels=labels,
        params={
            "s": prm.mean_item_size,
            "lambda": prm.request_rate,
            "b": prm.bandwidth,
            "h_prime": prm.hit_ratio,
            "model": model.name,
        },
    )


def improvement_vs_load(
    params: SystemParameters,
    *,
    request_rates: Sequence[float] | np.ndarray,
    n_f: float,
    p: float,
) -> SweepResult:
    """``G`` and ``C`` against offered load λ — the load-impedance ablation.

    Not a paper figure; supports the §5 observation that "prefetching an
    item when the system load is high costs more".
    """
    lams = np.asarray(request_rates, dtype=float)
    g = np.empty_like(lams)
    c = np.empty_like(lams)
    for i, lam in enumerate(lams):
        prm = params.with_(request_rate=float(lam))
        model = ModelA(prm)
        g[i] = np.asarray(model.improvement_closed_form(n_f, p, on_unstable="nan"))
        c[i] = np.asarray(model.excess_cost(n_f, p, on_unstable="nan"))
    return SweepResult(
        title=f"G and C vs lambda (model A, n(F)={n_f:g}, p={p:g})",
        x_label="lambda",
        y_label="value",
        series=(
            Series("G", lams, g),
            Series("C", lams, c),
        ),
        params={
            "s": params.mean_item_size,
            "b": params.bandwidth,
            "h_prime": params.hit_ratio,
            "n_f": n_f,
            "p": p,
        },
    )
