"""Common machinery for the prefetch–cache interaction models (paper §2.2, §3).

The paper derives, for each interaction model, the same chain of quantities;
only the post-prefetch hit ratio ``h(n̄(F), p)`` differs:

1. ``h`` — hit ratio after prefetching ``n̄(F)`` items of probability ``p``
   per request (model A: eq. 7; model B: eq. 15),
2. effective server request rate ``(1 − h + n̄(F)) λ`` — demand fetches plus
   prefetches,
3. utilisation ``ρ = (1 − h + n̄(F)) λ s̄ / b`` (eqs. 8/16),
4. retrieval time ``r̄ = s̄ / (b(1 − ρ))`` (eqs. 9/17),
5. access time ``t̄ = (1 − h) r̄`` (eqs. 10/18),
6. improvement ``G = t̄′ − t̄`` (eqs. 11/19),
7. threshold ``p_th`` making ``G > 0`` (eqs. 13/21).

:class:`PrefetchCacheModel` implements 2–6 *generically* from the subclass's
``hit_ratio``; subclasses additionally provide the paper's closed forms
(``improvement_closed_form``) so the test suite can assert both derivations
agree — a strong regression net for the algebra.

Everything is vectorised over ``n_f`` and ``p`` via numpy broadcasting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core import no_prefetch
from repro.core.parameters import SystemParameters
from repro.core.queueing import OnUnstable, resolve_unstable

__all__ = ["PrefetchCacheModel", "PositivityConditions", "max_np"]


def max_np(p: np.ndarray | float, fault_ratio: float) -> np.ndarray | float:
    """``max(np) = f′/p`` — cap on items with access probability ≥ p (eq. 6).

    Per request, the probability mass available to *future faults* is ``f′``;
    more than ``f′/p`` distinct items each carrying probability ``p`` would
    exceed it.
    """
    p_arr = np.asarray(p, dtype=float)
    with np.errstate(divide="ignore"):
        out = fault_ratio / p_arr
    if out.ndim == 0:
        return float(out)
    return out


@dataclass(frozen=True)
class PositivityConditions:
    """The three conditions for ``G > 0`` (paper (12) for A, (20) for B).

    Attributes hold boolean arrays (or scalars) aligned with the broadcast
    shape of the ``(n_f, p)`` inputs:

    ``profitable``
        condition 1 — the numerator of G is positive (``p > p_th``),
    ``demand_stable``
        condition 2 — capacity covers demand fetches (``ρ′ < 1``),
    ``prefetch_stable``
        condition 3 — capacity also covers prefetch traffic (``ρ < 1``).

    The paper proves 2 and 3 are *redundant* given condition 1 and the
    feasibility cap ``n̄(F) ≤ max(np)``; property tests in
    ``tests/core/test_conditions.py`` verify that claim numerically.
    """

    profitable: np.ndarray | bool
    demand_stable: np.ndarray | bool
    prefetch_stable: np.ndarray | bool

    @property
    def all_met(self) -> np.ndarray | bool:
        return self.profitable & self.demand_stable & self.prefetch_stable


class PrefetchCacheModel(ABC):
    """Base class: analytical performance of speculative prefetching.

    Subclasses model how prefetched items displace cache occupants, i.e. the
    map ``(n̄(F), p) → h``.  All other quantities are derived here.

    Parameters
    ----------
    params:
        The system operating point (``b, λ, s̄, h′`` and, for model B,
        ``n̄(C)``).
    """

    #: short machine name ("A", "B", "AB") used in tables and experiment ids
    name: str = "base"

    def __init__(self, params: SystemParameters) -> None:
        self.params = params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.params!r})"

    # ------------------------------------------------------------------
    # Model-specific pieces
    # ------------------------------------------------------------------
    @abstractmethod
    def hit_ratio(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        """Post-prefetch hit ratio ``h`` (eq. 7 / eq. 15)."""

    @abstractmethod
    def threshold(self) -> float:
        """Access-probability threshold ``p_th`` for a positive improvement."""

    @abstractmethod
    def improvement_closed_form(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """The paper's closed-form G (eq. 11 / eq. 19), for cross-checking."""

    @abstractmethod
    def n_f_limit(self, p: np.ndarray | float) -> np.ndarray | float:
        """Stability cap on ``n̄(F)`` from condition 3 (below eq. 13 / eq. 22)."""

    # ------------------------------------------------------------------
    # Generic derivations (identical algebra for every model)
    # ------------------------------------------------------------------
    def effective_request_rate(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        """Rate of jobs reaching the server: ``(1 − h + n̄(F)) λ``."""
        h = np.asarray(self.hit_ratio(n_f, p), dtype=float)
        out = (1.0 - h + np.asarray(n_f, dtype=float)) * self.params.request_rate
        if out.ndim == 0:
            return float(out)
        return out

    def utilization(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        """``ρ = (1 − h + n̄(F)) λ s̄ / b`` (eq. 8 / eq. 16)."""
        rate = np.asarray(self.effective_request_rate(n_f, p), dtype=float)
        out = rate * self.params.service_time
        if out.ndim == 0:
            return float(out)
        return out

    def retrieval_time(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """``r̄ = s̄ / (b(1 − ρ))`` (eq. 9 / eq. 17)."""
        rho = np.asarray(self.utilization(n_f, p), dtype=float)
        stable = rho < 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            r = self.params.mean_item_size / (self.params.bandwidth * (1.0 - rho))
        return resolve_unstable(r, stable, on_unstable, context=f"model {self.name} r_bar")

    def access_time(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """``t̄ = (1 − h) r̄`` (eq. 10 / eq. 18)."""
        h = np.asarray(self.hit_ratio(n_f, p), dtype=float)
        r = np.asarray(
            self.retrieval_time(n_f, p, on_unstable=on_unstable), dtype=float
        )
        out = (1.0 - h) * r
        if out.ndim == 0:
            return float(out)
        return out

    def improvement(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """Access improvement ``G = t̄′ − t̄`` (eq. 1), derived generically.

        Positive G means prefetching *helped*.  Subclasses' closed forms
        (eqs. 11/19) must agree with this; the test suite enforces it.
        """
        t_prime = no_prefetch.access_time(self.params, on_unstable=on_unstable)
        t = np.asarray(self.access_time(n_f, p, on_unstable=on_unstable), dtype=float)
        out = t_prime - t
        if out.ndim == 0:
            return float(out)
        return out

    def excess_cost(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        """Excess retrieval cost ``C = (ρ − ρ′)/(λ(1 − ρ)(1 − ρ′))`` (eq. 27)."""
        from repro.core.excess_cost import excess_cost as _excess_cost

        rho = self.utilization(n_f, p)
        return _excess_cost(
            rho,
            self.params.base_utilization,
            self.params.request_rate,
            on_unstable=on_unstable,
        )

    # ------------------------------------------------------------------
    # Feasibility and positivity
    # ------------------------------------------------------------------
    def max_np(self, p: np.ndarray | float) -> np.ndarray | float:
        """``max(np) = f′/p`` (eq. 6)."""
        return max_np(p, self.params.fault_ratio)

    def feasible(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | bool:
        """Whether ``0 ≤ n̄(F) ≤ max(np)`` and probabilities are valid.

        Inside this region the post-prefetch hit ratio stays in ``[0, 1]``
        for both models, so every derived formula is probabilistically
        meaningful.
        """
        n_f_arr = np.asarray(n_f, dtype=float)
        p_arr = np.asarray(p, dtype=float)
        cap = np.asarray(self.max_np(p_arr), dtype=float)
        out = (n_f_arr >= 0.0) & (p_arr > 0.0) & (p_arr <= 1.0) & (n_f_arr <= cap)
        if out.ndim == 0:
            return bool(out)
        return out

    def conditions(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> PositivityConditions:
        """Evaluate the paper's three positivity conditions ((12) / (20))."""
        p_arr = np.asarray(p, dtype=float)
        n_f_arr = np.asarray(n_f, dtype=float)
        profitable = p_arr > self.threshold()
        demand_stable = np.broadcast_to(
            np.asarray(self.params.base_utilization < 1.0), profitable.shape
        ) if profitable.ndim else np.asarray(self.params.base_utilization < 1.0)
        rho = np.asarray(self.utilization(n_f_arr, p_arr), dtype=float)
        prefetch_stable = rho < 1.0
        if profitable.ndim == 0:
            return PositivityConditions(
                profitable=bool(profitable),
                demand_stable=bool(demand_stable),
                prefetch_stable=bool(prefetch_stable),
            )
        return PositivityConditions(
            profitable=profitable,
            demand_stable=np.asarray(demand_stable, dtype=bool),
            prefetch_stable=prefetch_stable,
        )
