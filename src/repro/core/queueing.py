"""M/G/1 processor-sharing queueing primitives (paper §2.1, eq. 2–3).

The paper models the entire network behind the proxy as a single server
offering a *processor-sharing* (round-robin) service discipline.  For an
M/G/1-PS queue the mean time to complete a job of service requirement ``x``
is insensitive to the service-time distribution and equals

    ``r̄ = x / (1 − ρ)``                                          (eq. 2)

with system utilisation ``ρ``.  This module provides that formula, its
inverses, and a handful of standard PS facts (mean number in system,
slowdown, busy probability) used by the simulator validation suite.

All functions are numpy-vectorised: scalars in → scalar ``float`` out,
arrays in → arrays out.  Evaluation outside the stability region ``ρ < 1``
is controlled by ``on_unstable``:

``"nan"`` (default)
    return NaN for the offending entries — convenient for plotting sweeps,
``"raise"``
    raise :class:`repro.errors.StabilityError`,
``"inf"``
    return ``+inf`` (a saturated queue's response time diverges).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import StabilityError

__all__ = [
    "OnUnstable",
    "ps_response_time",
    "ps_slowdown",
    "ps_mean_jobs",
    "utilization",
    "max_stable_rate",
    "resolve_unstable",
    "stability_mask",
]

OnUnstable = Literal["nan", "raise", "inf"]

_VALID_ON_UNSTABLE = ("nan", "raise", "inf")


def _validate_policy(on_unstable: str) -> None:
    if on_unstable not in _VALID_ON_UNSTABLE:
        raise ValueError(
            f"on_unstable must be one of {_VALID_ON_UNSTABLE}, got {on_unstable!r}"
        )


def stability_mask(rho: np.ndarray | float) -> np.ndarray:
    """Boolean mask of operating points with ``0 <= rho < 1``."""
    rho_arr = np.asarray(rho, dtype=float)
    return (rho_arr >= 0.0) & (rho_arr < 1.0)


def resolve_unstable(
    values: np.ndarray,
    stable: np.ndarray,
    on_unstable: OnUnstable,
    *,
    context: str = "queueing formula",
) -> np.ndarray | float:
    """Apply the ``on_unstable`` policy to ``values`` where ``stable`` is False.

    Returns a scalar ``float`` when the inputs were 0-d.  This helper is
    shared by every closed-form in :mod:`repro.core` so the three policies
    behave identically package-wide.
    """
    _validate_policy(on_unstable)
    values = np.asarray(values, dtype=float)
    stable = np.asarray(stable, dtype=bool)
    if on_unstable == "raise":
        if not np.all(stable):
            raise StabilityError(
                f"{context} evaluated outside the stability region "
                f"({np.count_nonzero(~stable)} of {stable.size} points have rho >= 1)"
            )
        out = values
    else:
        fill = np.nan if on_unstable == "nan" else np.inf
        out = np.where(stable, values, fill)
    if out.ndim == 0:
        return float(out)
    return out


def utilization(
    arrival_rate: np.ndarray | float,
    service_time: np.ndarray | float,
) -> np.ndarray | float:
    """``ρ = λ_eff · x`` — offered load of a single-server queue.

    ``arrival_rate`` is the rate of *jobs reaching the server* (after cache
    filtering and including prefetches), ``service_time`` the mean work per
    job, ``x = s̄/b`` (eq. 3).
    """
    rho = np.asarray(arrival_rate, dtype=float) * np.asarray(service_time, dtype=float)
    if rho.ndim == 0:
        return float(rho)
    return rho


def ps_response_time(
    service_time: np.ndarray | float,
    rho: np.ndarray | float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """Mean response time ``r̄ = x / (1 − ρ)`` of an M/G/1-PS server (eq. 2).

    The PS discipline is *insensitive*: only the mean of the service-time
    distribution matters, which is why the paper can reason with ``s̄/b``
    alone.  For a job of specific size ``x`` the *conditional* expected
    response time is also ``x/(1−ρ)`` — pass that ``x`` directly.
    """
    x = np.asarray(service_time, dtype=float)
    rho_arr = np.asarray(rho, dtype=float)
    stable = stability_mask(rho_arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        r = x / (1.0 - rho_arr)
    return resolve_unstable(r, stable, on_unstable, context="ps_response_time")


def ps_slowdown(
    rho: np.ndarray | float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """Mean slowdown ``1/(1−ρ)`` — response time per unit of service."""
    rho_arr = np.asarray(rho, dtype=float)
    stable = stability_mask(rho_arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        s = 1.0 / (1.0 - rho_arr)
    return resolve_unstable(s, stable, on_unstable, context="ps_slowdown")


def ps_mean_jobs(
    rho: np.ndarray | float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """Mean number of concurrent jobs ``N̄ = ρ/(1−ρ)`` in an M/G/1-PS server.

    Identical to M/M/1 by PS insensitivity; used by the DES validation
    experiments to cross-check the simulated server occupancy.
    """
    rho_arr = np.asarray(rho, dtype=float)
    stable = stability_mask(rho_arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        n = rho_arr / (1.0 - rho_arr)
    return resolve_unstable(n, stable, on_unstable, context="ps_mean_jobs")


def max_stable_rate(
    service_time: np.ndarray | float,
) -> np.ndarray | float:
    """Largest job arrival rate the server sustains: ``λ_max = 1/x``."""
    x = np.asarray(service_time, dtype=float)
    with np.errstate(divide="ignore"):
        rate = 1.0 / x
    if rate.ndim == 0:
        return float(rate)
    return rate
