"""Model B — *evict average-value items* (paper §2.2, §3.2).

Model B assumes every cached entry contributes uniformly ``h′/n̄(C)`` to the
no-prefetch hit ratio, so each eviction forfeits that much hit probability:

    ``h = h′ − n̄(F) h′/n̄(C) + n̄(F) p``                           (eq. 15)

leading to

    ``t̄ = (f′ + n̄(F)h′/n̄(C) − n̄(F)p) s̄
          / (b − f′λs̄ − (n̄(F)/n̄(C))h′λs̄ − n̄(F)(1−p)λs̄)``        (eq. 18)
    ``G = n̄(F) s̄ (pb − f′λs̄ − bh′/n̄(C)) / ((b − f′λs̄) · denom(18))``
                                                                  (eq. 19)
    ``p_th = ρ′ + h′/n̄(C)``                                       (eq. 21)

.. note::
   The boxed conclusion at the end of the paper's §3.2 prints the threshold
   as ``ρ′ + h′/n̄(F)``; equation (21) and condition (20.1) show the correct
   denominator is the cache occupancy ``n̄(C)``.  We implement eq. (21).

Model B needs one extra parameter (``n̄(C)``) compared with model A; §6 of
the paper argues A approximates B whenever ``n̄(C) ≫ n̄(F)``, which our
``tests/core/test_model_compare.py`` verifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.interaction_base import PrefetchCacheModel
from repro.core.parameters import SystemParameters
from repro.core.queueing import OnUnstable, resolve_unstable

__all__ = ["ModelB", "hit_ratio", "improvement", "threshold"]


def hit_ratio(
    params: SystemParameters,
    n_f: np.ndarray | float,
    p: np.ndarray | float,
) -> np.ndarray | float:
    """``h = h′ − n̄(F)h′/n̄(C) + n̄(F)p`` (eq. 15)."""
    n_c = params.require_cache_size()
    n_f_arr = np.asarray(n_f, dtype=float)
    p_arr = np.asarray(p, dtype=float)
    out = params.hit_ratio - n_f_arr * params.hit_ratio / n_c + n_f_arr * p_arr
    if np.ndim(out) == 0:
        return float(out)
    return out


def threshold(params: SystemParameters) -> float:
    """``p_th = ρ′ + h′/n̄(C)`` (eq. 21, correcting the §3.2 box typo)."""
    n_c = params.require_cache_size()
    return params.base_utilization + params.hit_ratio / n_c


def improvement(
    params: SystemParameters,
    n_f: np.ndarray | float,
    p: np.ndarray | float,
    *,
    on_unstable: OnUnstable = "nan",
) -> np.ndarray | float:
    """Closed-form access improvement ``G`` for model B (eq. 19)."""
    n_c = params.require_cache_size()
    n_f_arr = np.asarray(n_f, dtype=float)
    p_arr = np.asarray(p, dtype=float)
    b = params.bandwidth
    s = params.mean_item_size
    lam = params.request_rate
    f = params.fault_ratio
    h = params.hit_ratio

    headroom = b - f * lam * s  # condition (20.2)
    post_headroom = (
        headroom
        - n_f_arr * h * lam * s / n_c
        - n_f_arr * (1.0 - p_arr) * lam * s
    )  # condition (20.3)
    numerator = n_f_arr * s * (p_arr * b - f * lam * s - b * h / n_c)
    stable = (headroom > 0.0) & (post_headroom > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        g = numerator / (headroom * post_headroom)
    return resolve_unstable(g, stable, on_unstable, context="model B G (eq. 19)")


class ModelB(PrefetchCacheModel):
    """Analytical prefetching model with average-value eviction (paper §3.2).

    Examples
    --------
    >>> from repro.core.parameters import SystemParameters
    >>> params = SystemParameters.paper_defaults(hit_ratio=0.3, cache_size=10)
    >>> m = ModelB(params)
    >>> round(m.threshold(), 3)               # rho' + h'/n(C) = 0.42 + 0.03
    0.45
    """

    name = "B"

    def __init__(self, params: SystemParameters) -> None:
        params.require_cache_size()
        super().__init__(params)

    def hit_ratio(
        self, n_f: np.ndarray | float, p: np.ndarray | float
    ) -> np.ndarray | float:
        return hit_ratio(self.params, n_f, p)

    def threshold(self) -> float:
        return threshold(self.params)

    def improvement_closed_form(
        self,
        n_f: np.ndarray | float,
        p: np.ndarray | float,
        *,
        on_unstable: OnUnstable = "nan",
    ) -> np.ndarray | float:
        return improvement(self.params, n_f, p, on_unstable=on_unstable)

    def n_f_limit(self, p: np.ndarray | float) -> np.ndarray | float:
        """Stability cap from condition (20.3).

        ``n̄(F) < (b − f′λs̄) / (λs̄ (h′/n̄(C) + 1 − p))``.  The paper (eq. 22)
        evaluates this at the marginal bandwidth ``b = f′λs̄/p_excess`` and
        shows it exceeds ``max(np)``, making condition 3 redundant.
        """
        n_c = self.params.require_cache_size()
        p_arr = np.asarray(p, dtype=float)
        lam = self.params.request_rate
        s = self.params.mean_item_size
        drain = self.params.hit_ratio / n_c + (1.0 - p_arr)
        with np.errstate(divide="ignore"):
            out = self.params.capacity_headroom / (lam * s * drain)
        out = np.where(drain <= 0.0, np.inf, out)
        if out.ndim == 0:
            return float(out)
        return out
