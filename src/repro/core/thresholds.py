"""Threshold computations for the paper's headline rule (§3.1/§3.2 boxes).

The paper's central prescription:

    *To maximise the access improvement, prefetch exclusively all items with
    access probability larger than the threshold value* ``p_th``.

Model A:  ``p_th = ρ′ = f′λs̄/b``            (eq. 13)
Model B:  ``p_th = ρ′ + h′/n̄(C)``            (eq. 21)

This module supplies scalar and fully vectorised threshold evaluation
(needed for the Figure 1 sweep over ``(s, b)`` grids), the decision helper
``should_prefetch``, and :func:`select_items` which applies the rule to a
concrete candidate list as a prefetch policy would.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

import numpy as np

from repro.core.parameters import SystemParameters
from repro.errors import ParameterError

__all__ = [
    "threshold_model_a",
    "threshold_model_b",
    "threshold_sweep",
    "should_prefetch",
    "select_items",
]


def threshold_model_a(
    *,
    bandwidth: np.ndarray | float,
    request_rate: np.ndarray | float,
    mean_item_size: np.ndarray | float,
    hit_ratio: np.ndarray | float,
) -> np.ndarray | float:
    """Vectorised ``p_th = (1 − h′)λs̄/b`` (eq. 13).

    All arguments broadcast; this is the workhorse behind Figure 1.  Values
    above 1 are *returned as-is* — a threshold above 1 simply means no item
    can profitably be prefetched at that operating point (the paper's plots
    clip the axis at 1 instead).
    """
    out = (
        (1.0 - np.asarray(hit_ratio, dtype=float))
        * np.asarray(request_rate, dtype=float)
        * np.asarray(mean_item_size, dtype=float)
        / np.asarray(bandwidth, dtype=float)
    )
    if np.ndim(out) == 0:
        return float(out)
    return out


def threshold_model_b(
    *,
    bandwidth: np.ndarray | float,
    request_rate: np.ndarray | float,
    mean_item_size: np.ndarray | float,
    hit_ratio: np.ndarray | float,
    cache_size: np.ndarray | float,
) -> np.ndarray | float:
    """Vectorised ``p_th = ρ′ + h′/n̄(C)`` (eq. 21)."""
    n_c = np.asarray(cache_size, dtype=float)
    if np.any(n_c <= 0):
        raise ParameterError("cache_size n(C) must be > 0 for model B thresholds")
    base = threshold_model_a(
        bandwidth=bandwidth,
        request_rate=request_rate,
        mean_item_size=mean_item_size,
        hit_ratio=hit_ratio,
    )
    out = np.asarray(base, dtype=float) + np.asarray(hit_ratio, dtype=float) / n_c
    if np.ndim(out) == 0:
        return float(out)
    return out


def threshold_sweep(
    params: SystemParameters,
    *,
    sizes: Sequence[float] | np.ndarray,
    bandwidths: Sequence[float] | np.ndarray,
    model: str = "A",
) -> np.ndarray:
    """Grid of thresholds, shape ``(len(bandwidths), len(sizes))``.

    This is exactly the Figure 1 computation: for each bandwidth curve,
    ``p_th`` as a function of item size ``s``.
    """
    s = np.asarray(sizes, dtype=float)[np.newaxis, :]
    b = np.asarray(bandwidths, dtype=float)[:, np.newaxis]
    if model.upper() == "A":
        return np.asarray(
            threshold_model_a(
                bandwidth=b,
                request_rate=params.request_rate,
                mean_item_size=s,
                hit_ratio=params.hit_ratio,
            )
        )
    if model.upper() == "B":
        return np.asarray(
            threshold_model_b(
                bandwidth=b,
                request_rate=params.request_rate,
                mean_item_size=s,
                hit_ratio=params.hit_ratio,
                cache_size=params.require_cache_size(),
            )
        )
    raise ParameterError(f"unknown interaction model {model!r}; expected 'A' or 'B'")


def should_prefetch(
    p: np.ndarray | float,
    p_th: np.ndarray | float,
    *,
    strict: bool = True,
) -> np.ndarray | bool:
    """Apply the threshold rule: prefetch iff ``p > p_th``.

    ``strict=True`` uses the paper's strict inequality (at ``p = p_th`` the
    improvement G is exactly zero, so prefetching is pointless and merely
    burns bandwidth — see Figure 2's flat ``p = p_th`` curve).
    """
    p_arr = np.asarray(p, dtype=float)
    th = np.asarray(p_th, dtype=float)
    out = (p_arr > th) if strict else (p_arr >= th)
    if np.ndim(out) == 0:
        return bool(out)
    return out


def select_items(
    candidates: Iterable[tuple[Hashable, float]],
    p_th: float,
    *,
    budget: int | None = None,
) -> list[tuple[Hashable, float]]:
    """Pick the items the threshold rule prefetches, most probable first.

    Parameters
    ----------
    candidates:
        ``(item, probability)`` pairs, e.g. a predictor's output.
    p_th:
        Threshold from :func:`threshold_model_a` / :func:`threshold_model_b`.
    budget:
        Optional hard cap on the number of selections (the paper shows no
        cap is needed for G > 0, but real systems may bound queue depth).

    Returns
    -------
    list of ``(item, probability)`` with ``probability > p_th``, sorted by
    descending probability, truncated to ``budget`` when given.
    """
    chosen = [(item, float(p)) for item, p in candidates if float(p) > p_th]
    chosen.sort(key=lambda pair: (-pair[1], str(pair[0])))
    if budget is not None:
        if budget < 0:
            raise ParameterError(f"budget must be >= 0, got {budget!r}")
        chosen = chosen[:budget]
    return chosen
