"""Item-size distributions.

The paper works with the *mean* size s̄ only — M/G/1-PS response times are
insensitive to the size distribution (the G in M/G/1), a property the
sim-vs-analytic experiment demonstrates by swapping these distributions
while holding s̄ fixed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "SizeDistribution",
    "FixedSize",
    "ExponentialSize",
    "ParetoSize",
    "LognormalSize",
]


class SizeDistribution(ABC):
    """Positive random size with a known mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ParameterError(f"mean size must be > 0, got {mean!r}")
        self.mean = float(mean)

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one size (> 0)."""


class FixedSize(SizeDistribution):
    """Every item has exactly the mean size (D service)."""

    name = "fixed"

    def sample(self, rng: np.random.Generator) -> float:
        return self.mean


class ExponentialSize(SizeDistribution):
    """Exponential sizes (M service — memoryless)."""

    name = "exponential"

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))


class ParetoSize(SizeDistribution):
    """Heavy-tailed sizes — the realistic web/file case.

    Parameterised by the tail index α > 1 (finite mean); the scale is set
    so the mean equals the requested value.  α ≤ 2 gives infinite variance,
    the regime where PS insensitivity is most striking.
    """

    name = "pareto"

    def __init__(self, mean: float, alpha: float = 2.5) -> None:
        super().__init__(mean)
        if alpha <= 1:
            raise ParameterError(f"alpha must be > 1 for a finite mean, got {alpha!r}")
        self.alpha = float(alpha)
        self._x_min = mean * (alpha - 1.0) / alpha

    def sample(self, rng: np.random.Generator) -> float:
        # numpy's pareto is the Lomax form; shift to classic Pareto.
        return float(self._x_min * (1.0 + rng.pareto(self.alpha)))


class LognormalSize(SizeDistribution):
    """Log-normal sizes with chosen coefficient of variation."""

    name = "lognormal"

    def __init__(self, mean: float, cv: float = 1.0) -> None:
        super().__init__(mean)
        if cv <= 0:
            raise ParameterError(f"cv must be > 0, got {cv!r}")
        self.cv = float(cv)
        sigma2 = np.log(1.0 + cv * cv)
        self._sigma = float(np.sqrt(sigma2))
        self._mu = float(np.log(mean) - sigma2 / 2.0)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))
