"""Markov reference-stream generator with controllable predictability.

The paper's analysis assumes the prefetcher is offered items with known
access probability ``p``.  To create a workload where that premise holds
*by construction*, this source draws the next item as:

* with probability ``q`` — follow the item's designated successor chain
  (the predictable component a Markov/PPM predictor can learn),
* with probability ``1 − q`` — draw fresh from a Zipf catalogue (noise).

So after observing item ``i``, the true next-access distribution is
``q`` on ``succ(i)`` plus ``(1−q)·zipf`` elsewhere — i.e. the successor's
probability is tunable through ``q``, letting experiments place candidate
probabilities precisely above or below the threshold ``p_th``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.workload.zipf import ZipfCatalog

__all__ = ["MarkovChainSource"]


class MarkovChainSource:
    """Zipf-modulated deterministic-successor Markov source.

    Parameters
    ----------
    catalog:
        The item universe and its popularity skew.
    follow_probability:
        q ∈ [0, 1] — probability of following the successor chain.
    successor_shift:
        ``succ(i) = (i + shift) mod N``; a fixed permutation keeps the true
        transition matrix known in closed form.
    rng:
        Generator for the random draws.
    """

    __slots__ = (
        "catalog",
        "follow_probability",
        "successor_shift",
        "_rng",
        "_current",
        "_dist_cache",
    )

    def __init__(
        self,
        catalog: ZipfCatalog,
        *,
        follow_probability: float = 0.8,
        successor_shift: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= follow_probability <= 1.0:
            raise ParameterError(
                f"follow_probability must be in [0, 1], got {follow_probability!r}"
            )
        if successor_shift % catalog.num_items == 0:
            raise ParameterError("successor_shift must not be a multiple of num_items")
        self.catalog = catalog
        self.follow_probability = float(follow_probability)
        self.successor_shift = int(successor_shift)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._current: int | None = None
        # The transition structure is immutable after construction, so the
        # per-state true distribution is cached: predictors query it on
        # every request, which otherwise dominates full-system run time.
        self._dist_cache: dict[tuple[int, int], list[tuple[int, float]]] = {}

    def successor(self, item: int) -> int:
        return (item + self.successor_shift) % self.catalog.num_items

    def next_item(self) -> int:
        """Generate the next access."""
        if (
            self._current is not None
            and self._rng.random() < self.follow_probability
        ):
            item = self.successor(self._current)
        else:
            item = self.catalog.sample(self._rng)
        self._current = item
        return item

    def generate(self, count: int) -> list[int]:
        """Generate ``count`` accesses using vectorized uniform blocks.

        Bit-identical to ``[self.next_item() for _ in range(count)]``
        *including* the generator's state afterwards (pinned by tests):
        uniforms are drawn in numpy blocks sized to a lower bound of the
        remaining demand — each step needs one follow-check draw plus one
        catalogue draw when the chain is not followed, so a block of
        ``remaining`` uniforms is never an overdraw — and the catalogue's
        inverse-CDF lookup runs once per block instead of once per miss.
        The per-item loop then only indexes precomputed arrays, which is
        what makes bulk trace generation several times faster than the
        per-draw path.
        """
        if count <= 0:
            return []
        rng = self._rng
        q = self.follow_probability
        num_items = self.catalog.num_items
        shift = self.successor_shift
        out: list[int] = []
        current = self._current
        #: the next uniform in the stream is a committed catalogue draw
        #: (true initially when there is no chain state to follow)
        need_catalog_draw = current is None
        remaining = count
        while remaining > 0:
            block = rng.random(remaining)
            indices = self.catalog.zipf_indices(block)
            pos = 0
            size = remaining  # == len(block)
            while pos < size:
                if need_catalog_draw:
                    current = int(indices[pos])
                    pos += 1
                    out.append(current)
                    remaining -= 1
                    need_catalog_draw = False
                elif block[pos] < q:
                    pos += 1
                    current = (current + shift) % num_items
                    out.append(current)
                    remaining -= 1
                else:
                    # Chain not followed: the catalogue draw is the next
                    # uniform — possibly in the next block.
                    pos += 1
                    if pos < size:
                        current = int(indices[pos])
                        pos += 1
                        out.append(current)
                        remaining -= 1
                    else:
                        need_catalog_draw = True
        self._current = current
        return out

    def stream(self, block: int = 256):
        """Endless item iterator over vectorized generation blocks.

        The consumers that draw one item at a time (the live simulation's
        client processes, trace generation) iterate this instead of calling
        :meth:`next_item` per request: the source's RNG stream is dedicated,
        so pre-generating ``block`` items consumes it exactly as per-draw
        calls would, and trailing unconsumed items at the end of a run touch
        state nothing else reads.
        """
        while True:
            yield from self.generate(block)

    # ------------------------------------------------------------------
    # Ground truth (what an ideal predictor would report)
    # ------------------------------------------------------------------
    def true_next_probability(self, last_item: int, candidate: int) -> float:
        """Exact ``P(next = candidate | current = last_item)``."""
        q = self.follow_probability
        base = (1.0 - q) * self.catalog.probability(candidate)
        if candidate == self.successor(last_item):
            return q + base
        return base

    def true_distribution(self, last_item: int, *, top: int = 10) -> list[tuple[int, float]]:
        """The true next-access distribution's ``top`` heaviest entries.

        Cached per ``(last_item, top)``; callers must treat the returned
        list as read-only.
        """
        key = (last_item, top)
        cached = self._dist_cache.get(key)
        if cached is not None:
            return cached
        succ = self.successor(last_item)
        candidates = {succ} | {i for i, _ in self.catalog.top(top)}
        dist = [(i, self.true_next_probability(last_item, i)) for i in candidates]
        dist.sort(key=lambda pair: (-pair[1], pair[0]))
        self._dist_cache[key] = dist = dist[:top]
        return dist
