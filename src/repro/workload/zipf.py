"""Zipf-distributed item popularity.

Web and file accesses are famously Zipf-like; the full simulation uses a
Zipf catalogue as its default stationary reference stream.  The class
exposes the *true* probabilities, which the validation experiments feed to
:class:`repro.predictors.oracle.DistributionOracle` so measured quantities
can be compared against the analysis with no estimation error in between.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError

__all__ = ["ZipfCatalog", "shared_catalog"]


class ZipfCatalog:
    """A finite catalogue with Zipf(α) popularity.

    ``P(item i) ∝ 1/(i+1)^α`` for ``i = 0..num_items−1`` (truncated Zipf —
    unlike ``numpy.random.zipf`` the support is finite, which a cache
    simulation needs).

    Parameters
    ----------
    num_items:
        Catalogue size ≥ 1.
    exponent:
        Skew α ≥ 0; 0 = uniform, ~0.8–1.2 is typical for web traces.

    Examples
    --------
    >>> cat = ZipfCatalog(num_items=100, exponent=1.0)
    >>> cat.probability(0) > cat.probability(50)
    True
    >>> abs(sum(cat.probabilities) - 1.0) < 1e-12
    True
    """

    __slots__ = ("num_items", "exponent", "_probs", "_cumulative")

    def __init__(self, num_items: int, exponent: float = 1.0) -> None:
        if num_items < 1:
            raise ParameterError(f"num_items must be >= 1, got {num_items!r}")
        if exponent < 0:
            raise ParameterError(f"exponent must be >= 0, got {exponent!r}")
        self.num_items = int(num_items)
        self.exponent = float(exponent)
        ranks = np.arange(1, self.num_items + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        self._probs = weights / weights.sum()
        self._cumulative = np.cumsum(self._probs)

    @property
    def probabilities(self) -> np.ndarray:
        """True per-item probabilities, index = item id (most popular = 0)."""
        return self._probs.copy()

    def probability(self, item: int) -> float:
        if not 0 <= item < self.num_items:
            return 0.0
        return float(self._probs[item])

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw item ids i.i.d. from the catalogue distribution."""
        if size is not None:
            return self.sample_batch(rng, size)
        return int(np.searchsorted(self._cumulative, rng.random(), side="right"))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` item ids in one vectorized block.

        Consumes the generator's bit stream exactly as ``size`` scalar
        :meth:`sample` calls would (numpy fills ``random(n)`` from the same
        double stream), so batch and per-draw paths are interchangeable
        mid-stream without perturbing downstream draws — pinned by tests.
        """
        u = rng.random(size)
        return np.searchsorted(self._cumulative, u, side="right").astype(int)

    def zipf_indices(self, uniforms: np.ndarray) -> np.ndarray:
        """Map already-drawn uniforms to item ids (inverse-CDF lookup).

        Lets callers that manage their own uniform blocks (e.g. the Markov
        source's batched generator) share the catalogue's inversion.
        """
        return np.searchsorted(self._cumulative, uniforms, side="right")

    def top(self, k: int) -> list[tuple[int, float]]:
        """The k most popular items with their probabilities."""
        k = min(k, self.num_items)
        return [(i, float(self._probs[i])) for i in range(k)]

    def expected_hit_ratio(self, cache_items: int) -> float:
        """Hit ratio of a cache pinning the ``cache_items`` most popular items.

        For an i.i.d. Zipf stream and a frequency-perfect cache this is the
        probability mass of the top entries — a closed-form ``h′`` used to
        parameterise analytic comparisons.

        .. note::
           This is the *clairvoyant upper bound* (what LFU converges to),
           identical to :func:`repro.analysis.cachemodel.
           optimal_cache_hit_ratio` on this catalogue's pdf.  A real LRU
           cache hits strictly less: use :func:`repro.analysis.cachemodel.
           che_hit_ratio_generalized` (the Che approximation, the model
           behind analytic screening) to predict simulated LRU behaviour.
           The gap is measured by ``tests/analysis/test_cachemodel.py``'s
           regression test against a simulated LRU point.
        """
        if cache_items <= 0:
            return 0.0
        return float(self._probs[: min(cache_items, self.num_items)].sum())


@lru_cache(maxsize=64)
def shared_catalog(num_items: int, exponent: float) -> ZipfCatalog:
    """One :class:`ZipfCatalog` per ``(num_items, exponent)``, memoised.

    A catalogue is immutable after construction (probability/cumulative
    arrays are only ever read), so every client with the same parameters
    can safely share one instance.  At 100k+ clients the per-client
    catalogue arrays (~16 bytes × num_items each) dominate build memory;
    sharing collapses that to one copy per distinct parameter pair.
    Callers that need an unshared instance (e.g. to mutate in a test)
    construct :class:`ZipfCatalog` directly.
    """
    return ZipfCatalog(num_items=num_items, exponent=exponent)
