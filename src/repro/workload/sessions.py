"""Multi-user workload composition.

The paper's model is explicitly multi-user: "multiple users accessing the
network through a common proxy" at aggregate rate λ.  A
:class:`WorkloadSpec` describes the population (how many clients, their
per-client rate, reference locality, item sizes); :func:`generate_trace`
realises it as a merged, time-ordered trace for trace-driven runs, and the
live simulation consumes the same spec directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.des.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.markov_source import MarkovChainSource
from repro.workload.sizes import FixedSize, SizeDistribution
from repro.workload.trace import TraceRecord
from repro.workload.zipf import ZipfCatalog

__all__ = ["WorkloadSpec", "generate_trace"]


@dataclass
class WorkloadSpec:
    """Parameters of a multi-client reference stream.

    Attributes
    ----------
    num_clients:
        Number of users behind the proxy.
    request_rate:
        *Aggregate* rate λ across all clients (each client gets λ/N).
    catalog_size, zipf_exponent:
        The shared item catalogue.
    follow_probability:
        Markov predictability q of each client's stream (0 = i.i.d. Zipf).
    mean_item_size:
        s̄ for the size distribution.
    size_distribution:
        Optional override; default :class:`FixedSize` (s̄ exactly).
    """

    num_clients: int = 4
    request_rate: float = 30.0
    catalog_size: int = 500
    zipf_exponent: float = 1.0
    follow_probability: float = 0.0
    mean_item_size: float = 1.0
    size_distribution: SizeDistribution | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.request_rate <= 0:
            raise ConfigurationError(f"request_rate must be > 0, got {self.request_rate}")
        if self.catalog_size < 2:
            raise ConfigurationError(f"catalog_size must be >= 2, got {self.catalog_size}")
        if not 0.0 <= self.follow_probability <= 1.0:
            raise ConfigurationError("follow_probability must be in [0, 1]")
        if self.mean_item_size <= 0:
            raise ConfigurationError("mean_item_size must be > 0")

    @property
    def per_client_rate(self) -> float:
        return self.request_rate / self.num_clients

    def make_catalog(self) -> ZipfCatalog:
        return ZipfCatalog(self.catalog_size, self.zipf_exponent)

    def make_sizes(self) -> SizeDistribution:
        return self.size_distribution or FixedSize(self.mean_item_size)

    def make_arrivals(self) -> ArrivalProcess:
        return PoissonArrivals(self.per_client_rate)

    def make_source(self, client: int, streams: RandomStreams) -> MarkovChainSource:
        """Per-client reference source (independent RNG stream)."""
        return MarkovChainSource(
            self.make_catalog(),
            follow_probability=self.follow_probability,
            rng=streams.get(f"client{client}/items"),
        )


def generate_trace(
    spec: WorkloadSpec,
    *,
    duration: float,
    seed: int = 0,
) -> list[TraceRecord]:
    """Realise the spec as one merged, time-ordered trace.

    Clients are simulated independently and their request streams merged by
    timestamp (a k-way heap merge, so memory stays linear in the output).
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration!r}")
    streams = RandomStreams(seed)
    sizes = spec.make_sizes()
    size_rng = streams.get("sizes")
    heap: list[tuple[float, int]] = []
    arrivals = spec.make_arrivals()
    arrival_rngs = {c: streams.get(f"client{c}/arrivals") for c in range(spec.num_clients)}
    sources = {c: spec.make_source(c, streams) for c in range(spec.num_clients)}
    # Per-client items come from dedicated RNG streams, so each client's
    # reference stream is pre-generated in vectorized blocks (bit-identical
    # to per-record next_item(); trailing unused draws touch nothing else).
    item_streams = {c: sources[c].stream() for c in range(spec.num_clients)}
    for c in range(spec.num_clients):
        t = arrivals.next_gap(arrival_rngs[c])
        if t <= duration:
            heapq.heappush(heap, (t, c))
    records: list[TraceRecord] = []
    while heap:
        t, c = heapq.heappop(heap)
        records.append(
            TraceRecord(
                time=t,
                client=c,
                item=next(item_streams[c]),
                size=float(sizes.sample(size_rng)),
            )
        )
        t_next = t + arrivals.next_gap(arrival_rngs[c])
        if t_next <= duration:
            heapq.heappush(heap, (t_next, c))
    return records
