"""Multi-user workload composition.

The paper's model is explicitly multi-user: "multiple users accessing the
network through a common proxy" at aggregate rate λ.  A
:class:`WorkloadSpec` describes the population (how many clients, their
per-client rate, reference locality, item sizes); :func:`generate_trace`
realises it as a merged, time-ordered trace for trace-driven runs, and the
live simulation consumes the same spec directly.

Populations need not be homogeneous: ``client_overrides`` maps a client id
to per-client parameter overrides (``request_rate`` — that client's *own*
rate instead of the λ/N share — ``catalog_size``, ``zipf_exponent``,
``follow_probability``), so one run can mix hot and cold clients, or
predictable and noisy ones.  All derived objects (arrival processes,
reference sources) are built through the per-client accessors, which fall
back to the homogeneous parameters when no override exists — a spec
without overrides behaves bit-identically to one predating the feature.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.des.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.markov_source import MarkovChainSource
from repro.workload.phases import PhaseSchedule, PhaseSpec, phased_next_arrival
from repro.workload.sizes import FixedSize, SizeDistribution
from repro.workload.trace import TraceRecord
from repro.workload.zipf import ZipfCatalog, shared_catalog

__all__ = ["WorkloadSpec", "generate_trace", "CLIENT_OVERRIDE_FIELDS"]

#: WorkloadSpec fields that may be overridden per client.
CLIENT_OVERRIDE_FIELDS = (
    "request_rate",
    "catalog_size",
    "zipf_exponent",
    "follow_probability",
)


@dataclass
class WorkloadSpec:
    """Parameters of a multi-client reference stream.

    Attributes
    ----------
    num_clients:
        Number of users behind the proxy.
    request_rate:
        *Aggregate* rate λ across all clients (each client gets λ/N).
    catalog_size, zipf_exponent:
        The shared item catalogue.
    follow_probability:
        Markov predictability q of each client's stream (0 = i.i.d. Zipf).
    mean_item_size:
        s̄ for the size distribution.
    size_distribution:
        Optional override; default :class:`FixedSize` (s̄ exactly).
    client_overrides:
        ``client id -> {field: value}`` heterogeneous per-client overrides;
        allowed fields are :data:`CLIENT_OVERRIDE_FIELDS`.  An overridden
        ``request_rate`` is that client's *own* rate (the others keep their
        λ/N share), so the aggregate becomes the sum of effective rates.
    phases:
        Optional piecewise-stationary time structure: a sequence of
        :class:`~repro.workload.phases.PhaseSpec` (or plain mappings with
        its fields) repeated cyclically for the whole run.  Each phase
        scales every client's arrival rate by its ``rate_multiplier`` and
        may reshape the reference stream (``zipf_exponent`` override,
        ``popularity_shift`` rotation).  ``None`` (the default) keeps
        every driver on its stationary code path, bit-identical to a spec
        predating the feature.
    """

    num_clients: int = 4
    request_rate: float = 30.0
    catalog_size: int = 500
    zipf_exponent: float = 1.0
    follow_probability: float = 0.0
    mean_item_size: float = 1.0
    size_distribution: SizeDistribution | None = field(default=None, repr=False)
    client_overrides: Mapping[int, Mapping[str, Any]] = field(default_factory=dict)
    phases: tuple[PhaseSpec, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.request_rate <= 0:
            raise ConfigurationError(f"request_rate must be > 0, got {self.request_rate}")
        if self.catalog_size < 2:
            raise ConfigurationError(f"catalog_size must be >= 2, got {self.catalog_size}")
        if not 0.0 <= self.follow_probability <= 1.0:
            raise ConfigurationError("follow_probability must be in [0, 1]")
        if self.mean_item_size <= 0:
            raise ConfigurationError("mean_item_size must be > 0")
        # Canonical int-keyed copy (JSON round trips stringify keys); the
        # lookups in client_param expect ints.
        self.client_overrides = {
            int(client): dict(overrides)
            for client, overrides in dict(self.client_overrides).items()
        }
        for client, overrides in self.client_overrides.items():
            if not 0 <= int(client) < self.num_clients:
                raise ConfigurationError(
                    f"client_overrides for unknown client {client!r} "
                    f"(num_clients={self.num_clients})"
                )
            unknown = set(overrides) - set(CLIENT_OVERRIDE_FIELDS)
            if unknown:
                raise ConfigurationError(
                    f"client {client}: unknown override field(s) {sorted(unknown)}; "
                    f"allowed: {CLIENT_OVERRIDE_FIELDS}"
                )
            # Value validation, mirroring the top-level checks: a bad
            # override would otherwise surface only deep inside the run
            # (or not at all — e.g. a degenerate catalogue), far from the
            # spec that caused it.
            if "request_rate" in overrides and overrides["request_rate"] <= 0:
                raise ConfigurationError(
                    f"client {client}: request_rate override must be > 0, "
                    f"got {overrides['request_rate']!r}"
                )
            if "catalog_size" in overrides and int(overrides["catalog_size"]) < 2:
                raise ConfigurationError(
                    f"client {client}: catalog_size override must be >= 2, "
                    f"got {overrides['catalog_size']!r}"
                )
            if "follow_probability" in overrides and not (
                0.0 <= overrides["follow_probability"] <= 1.0
            ):
                raise ConfigurationError(
                    f"client {client}: follow_probability override must be "
                    f"in [0, 1], got {overrides['follow_probability']!r}"
                )
            if "zipf_exponent" in overrides and overrides["zipf_exponent"] < 0:
                raise ConfigurationError(
                    f"client {client}: zipf_exponent override must be >= 0, "
                    f"got {overrides['zipf_exponent']!r}"
                )
        if self.phases is not None:
            entries = tuple(
                p if isinstance(p, PhaseSpec) else PhaseSpec(**dict(p))
                for p in self.phases
            )
            if not entries:
                raise ConfigurationError(
                    "phases must be None or a non-empty sequence of PhaseSpec"
                )
            self.phases = entries

    def make_schedule(self) -> PhaseSchedule | None:
        """Resolved :class:`~repro.workload.phases.PhaseSchedule` (or
        ``None`` for a stationary spec)."""
        if self.phases is None:
            return None
        return PhaseSchedule(self.phases)

    @property
    def per_client_rate(self) -> float:
        return self.request_rate / self.num_clients

    def client_param(self, client: int | None, name: str):
        """Effective value of ``name`` for ``client`` (override-aware)."""
        if client is not None:
            overrides = self.client_overrides.get(client)
            if overrides and name in overrides:
                return overrides[name]
        if name == "request_rate":
            return self.per_client_rate
        return getattr(self, name)

    def rate_of(self, client: int | None = None) -> float:
        """That client's effective request rate (λ/N unless overridden)."""
        return float(self.client_param(client, "request_rate"))

    def make_catalog(self, client: int | None = None) -> ZipfCatalog:
        # Shared (memoised) instance: the catalogue is immutable, and at
        # large populations per-client copies dominate build memory.
        return shared_catalog(
            int(self.client_param(client, "catalog_size")),
            float(self.client_param(client, "zipf_exponent")),
        )

    def make_sizes(self) -> SizeDistribution:
        return self.size_distribution or FixedSize(self.mean_item_size)

    def make_arrivals(self, client: int | None = None) -> ArrivalProcess:
        return PoissonArrivals(self.rate_of(client))

    def make_source(self, client: int, streams: RandomStreams) -> MarkovChainSource:
        """Per-client reference source (independent RNG stream)."""
        return MarkovChainSource(
            self.make_catalog(client),
            follow_probability=float(
                self.client_param(client, "follow_probability")
            ),
            rng=streams.get(f"client{client}/items"),
        )

    # ------------------------------------------------------------------
    # Phased builders (phases is not None)
    # ------------------------------------------------------------------
    def make_phase_arrivals(
        self, schedule: PhaseSchedule, client: int | None = None
    ) -> tuple[PoissonArrivals, ...]:
        """One arrival process per phase at that phase's effective rate."""
        base = self.rate_of(client)
        return tuple(PoissonArrivals(base * m) for m in schedule.multipliers)

    def make_phase_sources(
        self, client: int, streams: RandomStreams, schedule: PhaseSchedule
    ) -> tuple[MarkovChainSource, ...]:
        """One reference source per item variant (dedicated RNG streams).

        The base variant keeps the unphased stream name
        (``client<c>/items``) and the workload's own catalogue, so a
        schedule that never reshapes items draws exactly what the
        stationary path would.
        """
        catalogs = schedule.variant_catalogs(
            catalog_size=int(self.client_param(client, "catalog_size")),
            zipf_exponent=float(self.client_param(client, "zipf_exponent")),
        )
        names = schedule.stream_names(f"client{client}/items")
        q = float(self.client_param(client, "follow_probability"))
        return tuple(
            MarkovChainSource(
                catalog, follow_probability=q, rng=streams.get(name)
            )
            for catalog, name in zip(catalogs, names)
        )


def generate_trace(
    spec: WorkloadSpec,
    *,
    duration: float,
    seed: int = 0,
) -> list[TraceRecord]:
    """Realise the spec as one merged, time-ordered trace.

    Clients are simulated independently and their request streams merged by
    timestamp (a k-way heap merge, so memory stays linear in the output).
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration!r}")
    schedule = spec.make_schedule()
    if schedule is not None:
        return _generate_phased_trace(
            spec, schedule, duration=duration, seed=seed
        )
    streams = RandomStreams(seed)
    sizes = spec.make_sizes()
    size_rng = streams.get("sizes")
    heap: list[tuple[float, int]] = []
    # Per-client arrival processes (override-aware; identical draws to one
    # shared process for homogeneous specs, since the rngs are per client).
    arrivals = {c: spec.make_arrivals(c) for c in range(spec.num_clients)}
    arrival_rngs = {c: streams.get(f"client{c}/arrivals") for c in range(spec.num_clients)}
    sources = {c: spec.make_source(c, streams) for c in range(spec.num_clients)}
    # Per-client items come from dedicated RNG streams, so each client's
    # reference stream is pre-generated in vectorized blocks (bit-identical
    # to per-record next_item(); trailing unused draws touch nothing else).
    item_streams = {c: sources[c].stream() for c in range(spec.num_clients)}
    for c in range(spec.num_clients):
        t = arrivals[c].next_gap(arrival_rngs[c])
        if t <= duration:
            heapq.heappush(heap, (t, c))
    records: list[TraceRecord] = []
    while heap:
        t, c = heapq.heappop(heap)
        records.append(
            TraceRecord(
                time=t,
                client=c,
                item=next(item_streams[c]),
                size=float(sizes.sample(size_rng)),
            )
        )
        t_next = t + arrivals[c].next_gap(arrival_rngs[c])
        if t_next <= duration:
            heapq.heappush(heap, (t_next, c))
    return records


def _generate_phased_trace(
    spec: WorkloadSpec,
    schedule: PhaseSchedule,
    *,
    duration: float,
    seed: int,
) -> list[TraceRecord]:
    """Phased variant of :func:`generate_trace` (same merge structure).

    Arrivals walk the piecewise-homogeneous Poisson process per client
    (:func:`~repro.workload.phases.phased_next_arrival`); items come from
    the phase's item variant.  With a single neutral phase every draw —
    gaps, items, sizes — hits the same streams in the same order as the
    stationary path, so the output is identical (pinned by tests).
    """
    streams = RandomStreams(seed)
    sizes = spec.make_sizes()
    size_rng = streams.get("sizes")
    n = spec.num_clients
    arrivals = {c: spec.make_phase_arrivals(schedule, c) for c in range(n)}
    arrival_rngs = {c: streams.get(f"client{c}/arrivals") for c in range(n)}
    sources = {c: spec.make_phase_sources(c, streams, schedule) for c in range(n)}
    item_streams = {
        c: tuple(source.stream() for source in sources[c]) for c in range(n)
    }
    variant_of_phase = schedule.variant_of_phase
    # Heap entries carry the arrival's phase so the item draw uses the
    # variant active when the request fires, not when it was scheduled.
    heap: list[tuple[float, int, int]] = []
    for c in range(n):
        t, idx = phased_next_arrival(0.0, schedule, arrivals[c], arrival_rngs[c])
        if t <= duration:
            heapq.heappush(heap, (t, c, idx))
    records: list[TraceRecord] = []
    while heap:
        t, c, idx = heapq.heappop(heap)
        records.append(
            TraceRecord(
                time=t,
                client=c,
                item=next(item_streams[c][variant_of_phase[idx]]),
                size=float(sizes.sample(size_rng)),
            )
        )
        t_next, idx_next = phased_next_arrival(
            t, schedule, arrivals[c], arrival_rngs[c]
        )
        if t_next <= duration:
            heapq.heappush(heap, (t_next, c, idx_next))
    return records
