"""Client-class aggregation: homogeneous clients collapsed into one flow.

A per-client simulation pays one generator process, one RNG stream pair and
one controller per client, which caps ``num_clients`` in the low thousands.
But the paper's population is *statistically homogeneous*: every client
behind a proxy draws from the same catalogue at the same rate.  The merged
request stream of ``k`` such clients has a closed form — the superposition
of ``k`` independent Poisson(λ) processes is Poisson(kλ), with each arrival
belonging to a uniformly-random member — so the whole class can be driven
by **one** batched arrival process without changing the law of the stream.

:func:`partition_client_classes` groups a :class:`~repro.workload.sessions.
WorkloadSpec`'s population into maximal homogeneous classes (same home
node, same effective per-client parameters — ``client_overrides`` split
classes off exactly where they make clients heterogeneous), and
:class:`AggregateClassSource` generates the merged reference stream of one
multi-member class in vectorized NumPy blocks.

Exactness
---------
* **Arrivals** are exact: Poisson superposition, gaps pre-drawn in blocks
  (``rng.exponential(size=n)`` consumes the bit stream exactly like ``n``
  scalar draws).
* **Items** are exact *in distribution* for any follow probability ``q``:
  each arrival picks a uniform member, then advances that member's own
  Markov chain — the same joint law as ``k`` independent per-client chains
  interleaved by their arrival times.  At ``q = 0`` the stream degenerates
  to i.i.d. Zipf and the per-member state vanishes entirely (the fully
  vectorized fast path).
* **Caching** is where aggregation approximates: the class shares one
  cache of per-client capacity instead of ``k`` private ones.  Under IRM
  (``q = 0``) the LRU/FIFO hit-ratio law depends only on the popularity
  distribution, not the request rate, so the shared cache is statistically
  indistinguishable from the private ones; for ``q > 0`` the shared chain
  state couples members through the cache and the equivalence is
  approximate (the equivalence pins therefore use ``q = 0`` for
  multi-member classes).
* **Singleton classes** reuse the per-client RNG stream names and draw
  order, so they are *bit-identical* to the per-client backend — this is
  what lets heterogeneous populations (every client overridden) run under
  the aggregated backend with zero behavioural drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.workload.sessions import WorkloadSpec
from repro.workload.zipf import ZipfCatalog

__all__ = ["ClientClass", "partition_client_classes", "AggregateClassSource"]


@dataclass(frozen=True, eq=False)
class ClientClass:
    """One maximal homogeneous group of clients (same node, same params).

    ``request_rate`` is the *class aggregate* (per-member rate × size);
    the remaining parameters are the shared effective per-member values.
    ``members`` is the sorted array of client ids — its first entry is the
    :attr:`representative`, which names the class's RNG streams and its
    slot in the node's client/fetch-table maps.
    """

    class_id: int
    node_id: int
    members: np.ndarray
    request_rate: float
    catalog_size: int
    zipf_exponent: float
    follow_probability: float

    @property
    def size(self) -> int:
        return int(self.members.size)

    @property
    def representative(self) -> int:
        return int(self.members[0])

    @property
    def singleton(self) -> bool:
        return self.members.size == 1

    @property
    def stream_label(self) -> str:
        """RNG stream namespace of this class.

        Singletons keep the per-client name (``client<id>``) so their
        draws are bit-identical to the per-client backend; multi-member
        classes get their own namespace (``class<lowest member>``), which
        can never collide with a per-client name.
        """
        rep = self.representative
        return f"client{rep}" if self.singleton else f"class{rep}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClientClass {self.class_id} node={self.node_id} "
            f"size={self.size} rep={self.representative} "
            f"rate={self.request_rate:g} q={self.follow_probability:g}>"
        )


def partition_client_classes(spec: WorkloadSpec, topology) -> list[ClientClass]:
    """Partition the spec's population into homogeneous classes.

    Clients group by ``(home node, effective per-client parameters)``:
    non-overridden clients form one class per node (computed vectorized —
    the million-client case never loops in Python), and ``client_overrides``
    split off exactly the clients they make different.  An override that
    restates the default values merges back into the default class.

    Classes come back ordered by representative (lowest member id), so the
    build order — and therefore every "sum over classes" — is deterministic.
    """
    num_proxies = topology.num_proxies
    n = spec.num_clients
    default_params = (
        float(spec.per_client_rate),
        int(spec.catalog_size),
        float(spec.zipf_exponent),
        float(spec.follow_probability),
    )
    overridden = sorted(spec.client_overrides)
    if overridden:
        plain_mask = np.ones(n, dtype=bool)
        plain_mask[np.asarray(overridden, dtype=np.int64)] = False
        plain = np.nonzero(plain_mask)[0]
    else:
        plain = np.arange(n, dtype=np.int64)
    groups: dict[tuple[int, tuple], list[np.ndarray]] = {}
    if num_proxies == 1:
        if plain.size:
            groups[(0, default_params)] = [plain]
    else:
        homes = plain % num_proxies  # TopologyConfig.home_of, vectorized
        for node in range(num_proxies):
            members = plain[homes == node]
            if members.size:
                groups[(node, default_params)] = [members]
    for c in overridden:
        params = (
            float(spec.rate_of(c)),
            int(spec.client_param(c, "catalog_size")),
            float(spec.client_param(c, "zipf_exponent")),
            float(spec.client_param(c, "follow_probability")),
        )
        key = (topology.home_of(c), params)
        groups.setdefault(key, []).append(np.asarray([c], dtype=np.int64))
    entries = []
    for (node, params), arrays in groups.items():
        members = arrays[0] if len(arrays) == 1 else np.sort(np.concatenate(arrays))
        entries.append((int(members[0]), node, params, members))
    entries.sort(key=lambda e: e[0])
    return [
        ClientClass(
            class_id=class_id,
            node_id=node,
            members=members,
            request_rate=rate * members.size,
            catalog_size=catalog_size,
            zipf_exponent=zipf_exponent,
            follow_probability=follow_probability,
        )
        for class_id, (_, node, (rate, catalog_size, zipf_exponent,
                                 follow_probability), members)
        in enumerate(entries)
    ]


class AggregateClassSource:
    """Merged reference stream of one homogeneous multi-member class.

    Mirrors the :class:`~repro.workload.markov_source.MarkovChainSource`
    surface the simulation builds against (``stream``, ``successor``,
    ``true_distribution``, ``catalog``, ``follow_probability``) but
    generates the *interleaved* stream of ``num_members`` chains: per
    arrival, a uniformly-random member either follows its own successor
    chain (probability ``q``) or draws fresh from the shared catalogue.
    That is exactly the law of ``num_members`` independent per-client
    sources merged by their (homogeneous-rate) Poisson arrival times.

    Block draw order per ``generate(count)`` call — members, follow
    checks, catalogue uniforms, each of length ``count`` — is fixed and
    documented because the class's RNG stream is dedicated: over-drawn
    catalogue uniforms (follow steps don't consume theirs) touch nothing
    else.  At ``q = 0`` the whole call collapses to one
    :meth:`~repro.workload.zipf.ZipfCatalog.sample_batch`.
    """

    __slots__ = (
        "catalog",
        "follow_probability",
        "successor_shift",
        "num_members",
        "_rng",
        "_state",
        "_dist_cache",
    )

    def __init__(
        self,
        catalog: ZipfCatalog,
        *,
        num_members: int,
        follow_probability: float = 0.0,
        successor_shift: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_members < 1:
            raise ParameterError(f"num_members must be >= 1, got {num_members!r}")
        if not 0.0 <= follow_probability <= 1.0:
            raise ParameterError(
                f"follow_probability must be in [0, 1], got {follow_probability!r}"
            )
        if successor_shift % catalog.num_items == 0:
            raise ParameterError("successor_shift must not be a multiple of num_items")
        self.catalog = catalog
        self.follow_probability = float(follow_probability)
        self.successor_shift = int(successor_shift)
        self.num_members = int(num_members)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: per-member chain state (last item, -1 = none); allocated lazily
        #: because the q = 0 fast path never needs it
        self._state: np.ndarray | None = None
        self._dist_cache: dict[tuple[int, int], list[tuple[int, float]]] = {}

    def successor(self, item: int) -> int:
        return (item + self.successor_shift) % self.catalog.num_items

    # ------------------------------------------------------------------
    def generate(self, count: int) -> np.ndarray:
        """The next ``count`` merged accesses (vectorized draws)."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        rng = self._rng
        q = self.follow_probability
        if q == 0.0:
            # IRM: no chain state, the merged stream is i.i.d. Zipf.
            return self.catalog.sample_batch(rng, count)
        k = self.num_members
        if self._state is None:
            self._state = np.full(k, -1, dtype=np.int64)
        members = rng.integers(0, k, size=count)
        follow = rng.random(count) < q
        fresh = self.catalog.zipf_indices(rng.random(count))
        state = self._state
        out = np.empty(count, dtype=np.int64)
        shift = self.successor_shift
        num_items = self.catalog.num_items
        # The per-arrival loop is sequential by necessity (a member's next
        # step depends on its previous one), but it only indexes the
        # pre-drawn arrays — no RNG calls, no object dispatch.
        for j in range(count):
            m = members[j]
            s = state[m]
            item = (s + shift) % num_items if (s >= 0 and follow[j]) else fresh[j]
            out[j] = item
            state[m] = item
        return out

    def stream(self, block: int = 1024):
        """Endless merged-item iterator (python ints, like the per-client
        source's ``stream()`` — downstream hashing must not see numpy
        scalars, whose ``repr`` differs)."""
        while True:
            yield from self.generate(block).tolist()

    # ------------------------------------------------------------------
    # Ground truth for the "true-distribution" predictor
    # ------------------------------------------------------------------
    def true_next_probability(self, last_item: int, candidate: int) -> float:
        """``P(next = candidate | last merged item = last_item)``.

        The next arrival belongs to the observed member with probability
        ``1/k``, in which case its chain follows ``succ(last_item)`` with
        probability ``q``; other members' next items are approximated by
        the catalogue distribution (exact at ``q = 0``; for ``q > 0``
        their chain state is unobserved, so the successor mass seen by the
        class predictor is ``q/k`` — the aggregation-diluted signal).
        """
        q_eff = self.follow_probability / self.num_members
        base = (1.0 - q_eff) * self.catalog.probability(candidate)
        if candidate == self.successor(last_item):
            return q_eff + base
        return base

    def true_distribution(self, last_item: int, *, top: int = 10) -> list[tuple[int, float]]:
        """Top entries of the merged next-access distribution (cached)."""
        key = (last_item, top)
        cached = self._dist_cache.get(key)
        if cached is not None:
            return cached
        succ = self.successor(last_item)
        candidates = {succ} | {i for i, _ in self.catalog.top(top)}
        dist = [(i, self.true_next_probability(last_item, i)) for i in candidates]
        dist.sort(key=lambda pair: (-pair[1], pair[0]))
        self._dist_cache[key] = dist = dist[:top]
        return dist
