"""External access-log ingestion: real-world logs → :class:`TraceRecord`.

The replay engine (:mod:`repro.workload.replay`) consumes the repo's own
trace format; this module adapts the two formats real proxy/CDN workloads
usually arrive in:

* **generic CSV** (:func:`ingest_csv`) — any delimited file with a
  timestamp, client, item and optional size column, located by header name
  or position;
* **Common Log Format** (:func:`ingest_common_log`) — the
  ``host ident user [timestamp] "METHOD path HTTP/x" status bytes`` lines
  every Apache/nginx-style server emits.

Both interners map raw client/item identities (hostnames, URL paths, …) to
dense non-negative ints in first-seen order — exactly the id space the
simulation homes clients and shards catalogues over — and shift timestamps
to be relative to the first record, so a log from any epoch replays from
``t=0``.  The result round-trips through :func:`~repro.workload.trace.
save_trace` / :func:`~repro.workload.trace.load_trace` losslessly (pinned
by test), so a converted log is a first-class replay trace::

    ingest_common_log("access.log").save("access.jsonl")
    # then: python -m repro trace-replay --trace access.jsonl
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path

from repro.errors import TraceFormatError
from repro.workload.trace import TraceRecord, save_trace

__all__ = ["IngestedTrace", "ingest_csv", "ingest_common_log"]

#: sentinel distinguishing "default size column" (a header named ``size``
#: if present, else none) from an explicitly named one (absent is an error)
_DEFAULT_SIZE_COL = object()

#: ``host ident authuser [timestamp] "request" status bytes`` (+ optional
#: combined-format referrer/agent tail, which we ignore)
_CLF_PATTERN = re.compile(
    r'^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+'
    r'\[(?P<time>[^\]]+)\]\s+"(?P<method>\S+)\s+(?P<path>\S+)(?:\s+(?P<proto>[^"]*))?"\s+'
    r'(?P<status>\d{3})\s+(?P<size>\d+|-)'
)

_CLF_TIME_FORMAT = "%d/%b/%Y:%H:%M:%S %z"


@dataclass
class IngestedTrace:
    """A converted external log: records plus the identity mappings.

    ``client_ids`` / ``item_ids`` map the raw identities (hostname, URL
    path, CSV cell, …) to the dense ints the records carry, so analyses
    can translate results back to the original names.
    """

    records: list[TraceRecord]
    client_ids: dict[str, int] = field(default_factory=dict)
    item_ids: dict[str, int] = field(default_factory=dict)
    skipped: int = 0  #: malformed lines dropped (``skip_malformed=True``)

    def save(self, path: str | Path) -> int:
        """Write the converted trace (.csv or .jsonl); returns the count."""
        return save_trace(self.records, path)

    def __len__(self) -> int:
        return len(self.records)


class _Interner:
    """First-seen-order dense int ids for arbitrary string identities."""

    def __init__(self) -> None:
        self.ids: dict[str, int] = {}

    def __call__(self, raw: str) -> int:
        ids = self.ids
        found = ids.get(raw)
        if found is None:
            found = ids[raw] = len(ids)
        return found


def _finalize(
    rows: list[tuple[float, int, int, float]],
    clients: _Interner,
    items: _Interner,
    skipped: int,
    source: Path,
) -> IngestedTrace:
    if not rows:
        raise TraceFormatError(f"{source}: no ingestible records")
    # External logs are usually time-ordered but second-granularity stamps
    # tie and occasionally invert; a stable sort preserves the file order
    # of equal-time lines while making the result a valid trace.
    rows.sort(key=lambda row: row[0])
    origin = rows[0][0]
    records = [
        TraceRecord(time=t - origin, client=c, item=i, size=s)
        for t, c, i, s in rows
    ]
    return IngestedTrace(
        records=records,
        client_ids=dict(clients.ids),
        item_ids=dict(items.ids),
        skipped=skipped,
    )


def ingest_csv(
    path: str | Path,
    *,
    time_col: str | int = "time",
    client_col: str | int = "client",
    item_col: str | int = "item",
    size_col: str | int | None = _DEFAULT_SIZE_COL,
    default_size: float = 1.0,
    delimiter: str = ",",
    skip_malformed: bool = False,
) -> IngestedTrace:
    """Convert a delimited access log into a replayable trace.

    Columns are located by header name (strings) or 0-based position
    (ints; the file is then read headerless).  Client and item cells may
    hold anything — they are interned to dense ints — while the time cell
    must parse as a float (epoch seconds or any monotone unit).  A missing
    / empty / non-positive size cell falls back to ``default_size``.

    ``size_col`` left at its default uses a header column named ``size``
    when one exists and defaults every size otherwise; *explicitly* naming
    a column that the header lacks is an error, and ``size_col=None``
    ignores sizes entirely.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    by_name = any(isinstance(c, str) for c in (time_col, client_col, item_col))
    clients, items = _Interner(), _Interner()
    item_sizes: dict[int, float] = {}
    rows: list[tuple[float, int, int, float]] = []
    skipped = 0
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        start = 1
        if by_name:
            try:
                header = next(reader)
            except StopIteration:
                raise TraceFormatError(f"{path}: empty log file") from None
            start = 2
            positions = {name.strip(): i for i, name in enumerate(header)}

            def _index(col: str | int, label: str) -> int | None:
                if col is None:
                    return None
                if isinstance(col, int):
                    return col
                if col not in positions:
                    raise TraceFormatError(
                        f"{path}: no column {col!r} for {label} "
                        f"(header: {header})"
                    )
                return positions[col]

            idx = (
                _index(time_col, "time"),
                _index(client_col, "client"),
                _index(item_col, "item"),
            )
            if size_col is None:
                size_idx = None
            elif size_col is _DEFAULT_SIZE_COL:
                size_idx = positions.get("size")  # absent: sizes default
            else:
                size_idx = _index(size_col, "size")
        else:
            idx = (int(time_col), int(client_col), int(item_col))
            if size_col is None or size_col is _DEFAULT_SIZE_COL:
                size_idx = None  # headerless files have no "size" to find
            else:
                size_idx = int(size_col)
        for lineno, row in enumerate(reader, start=start):
            if not row:
                continue
            try:
                time = float(row[idx[0]])
                client = clients(row[idx[1]].strip())
                item = items(row[idx[2]].strip())
                size = default_size
                if size_idx is not None and size_idx < len(row):
                    cell = row[size_idx].strip()
                    if cell and cell != "-":
                        size = float(cell)
                if size <= 0:
                    size = default_size
            except (IndexError, ValueError) as exc:
                if skip_malformed:
                    skipped += 1
                    continue
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            # first seen size wins for the whole item: replay's origin
            # keeps per-item sizes stable, so the converted trace should
            # carry them stably too (same rule as ingest_common_log)
            size = item_sizes.setdefault(item, size)
            rows.append((time, client, item, size))
    return _finalize(rows, clients, items, skipped, path)


def ingest_common_log(
    path: str | Path,
    *,
    default_size: float = 1.0,
    size_scale: float = 1.0,
    skip_malformed: bool = False,
) -> IngestedTrace:
    """Convert an Apache/nginx Common (or Combined) Log Format file.

    Hosts become clients, request paths become items, the bracketed
    timestamp becomes seconds relative to the first line, and the response
    byte count — scaled by ``size_scale``, e.g. ``1/1024`` for KiB units —
    becomes the item size (``-`` or ``0`` bytes fall back to
    ``default_size``; an item's size is its *first* seen response size,
    matching the origin's stable-size contract on replay).
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    clients, items = _Interner(), _Interner()
    item_sizes: dict[int, float] = {}
    rows: list[tuple[float, int, int, float]] = []
    skipped = 0
    with path.open(encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            match = _CLF_PATTERN.match(line)
            if match is None:
                if skip_malformed:
                    skipped += 1
                    continue
                raise TraceFormatError(
                    f"{path}:{lineno}: not a Common Log Format line: {line[:80]!r}"
                )
            try:
                stamp = datetime.strptime(match["time"], _CLF_TIME_FORMAT)
            except ValueError as exc:
                if skip_malformed:
                    skipped += 1
                    continue
                raise TraceFormatError(
                    f"{path}:{lineno}: bad timestamp {match['time']!r}"
                ) from exc
            size = default_size
            if match["size"] != "-":
                raw = float(match["size"]) * size_scale
                if raw > 0:
                    size = raw
            item = items(match["path"])
            # first seen response size wins for the whole item, so the
            # converted trace carries stable per-item sizes (the origin's
            # contract on replay)
            size = item_sizes.setdefault(item, size)
            rows.append((stamp.timestamp(), clients(match["host"]), item, size))
    return _finalize(rows, clients, items, skipped, path)
