"""Request arrival processes.

The paper's queueing model assumes Poisson request arrivals at aggregate
rate λ (the M in M/G/1).  :class:`PoissonArrivals` is the default;
deterministic and renewal (Weibull/uniform) processes are included for the
robustness ablation — M/G/1-PS response times are insensitive to *service*
distribution but not to *arrival* burstiness, so checking how far the
formulas stretch under non-Poisson arrivals is a natural extension.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ParameterError

__all__ = ["ArrivalProcess", "PoissonArrivals", "DeterministicArrivals", "WeibullArrivals"]


class ArrivalProcess(ABC):
    """A stream of inter-arrival gaps with known mean rate."""

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ParameterError(f"arrival rate must be > 0, got {rate!r}")
        self.rate = float(rate)

    @abstractmethod
    def next_gap(self, rng: np.random.Generator) -> float:
        """Sample the next inter-arrival time (> 0)."""

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vector of ``count`` gaps (convenience for trace generation)."""
        return np.asarray([self.next_gap(rng) for _ in range(count)], dtype=float)


class PoissonArrivals(ArrivalProcess):
    """Exponential gaps — the paper's M arrival assumption."""

    __slots__ = ()

    name = "poisson"

    def next_gap(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=count)


class DeterministicArrivals(ArrivalProcess):
    """Fixed gaps — zero burstiness (D arrivals)."""

    __slots__ = ()

    name = "deterministic"

    def next_gap(self, rng: np.random.Generator) -> float:
        return 1.0 / self.rate


class WeibullArrivals(ArrivalProcess):
    """Weibull gaps — tunable burstiness around the same mean rate.

    ``shape < 1`` is burstier than Poisson, ``shape > 1`` smoother,
    ``shape = 1`` coincides with Poisson.
    """

    __slots__ = ("shape", "_scale")

    name = "weibull"

    def __init__(self, rate: float, shape: float = 1.0) -> None:
        super().__init__(rate)
        if shape <= 0:
            raise ParameterError(f"shape must be > 0, got {shape!r}")
        self.shape = float(shape)
        # Scale chosen so the mean gap is exactly 1/rate.
        from math import gamma

        self._scale = (1.0 / rate) / gamma(1.0 + 1.0 / self.shape)

    def next_gap(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self.shape))
