"""Time-varying workload phases (flash crowds, diurnal cycles, shifts).

The paper evaluates prefetching under *stationary* load, but the claims
that matter operationally — does the threshold rule still help when the
request rate triples for a minute? — need non-stationary demand.  A
:class:`PhaseSpec` describes one regime of a piecewise-stationary
workload; a sequence of phases (``WorkloadSpec.phases``) repeats
cyclically for the whole run, each phase scaling the arrival rate
(``rate_multiplier``) and optionally reshaping the reference stream
(``zipf_exponent`` override, ``popularity_shift`` hot-set rotation).

Semantics
---------
* **Arrivals** form a piecewise-homogeneous Poisson process: within a
  phase of multiplier ``m`` a client at base rate λ draws
  ``Exp(1/(m·λ))`` gaps; a drawn arrival that would cross the phase
  boundary is discarded and the draw restarts *at the boundary* at the
  new phase's rate — exactly correct by the exponential's memorylessness.
  A schedule with a **single** phase therefore degenerates to a constant
  rate whose draws are bit-identical to a spec with ``request_rate``
  scaled by ``m`` (pinned by tests).
* **Items**: phases that override ``zipf_exponent`` or set a
  ``popularity_shift`` get their own reference source (an *item
  variant*), fed from a dedicated RNG stream per variant so switching
  phases never perturbs another variant's draw sequence.  A
  ``popularity_shift`` rotates item identity — rank ``r``'s popularity
  moves to item ``(r + shift) mod N`` — which models a working-set
  change (the old hot set goes cold) without changing the popularity
  *law*; a full-catalogue shift makes every cache effectively cold, the
  declarative stand-in for a cache-cold restart.
* ``phases=None`` touches **no** phased code path at all: every driver
  keeps its pre-phases byte-for-byte behaviour (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import floor, inf

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfCatalog, shared_catalog

__all__ = [
    "PhaseSpec",
    "PhaseSchedule",
    "ShiftedCatalog",
    "shared_phase_catalog",
    "PhasedSourceView",
    "phased_next_arrival",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One regime of a piecewise-stationary workload.

    Attributes
    ----------
    duration:
        Length of the phase in simulation time (> 0).  The phase list
        repeats cyclically until the run ends.
    rate_multiplier:
        Arrival-rate scale during this phase (> 0); each client's base
        rate λ becomes ``rate_multiplier · λ``.
    zipf_exponent:
        Optional override of the catalogue skew during this phase
        (``None`` → the workload's own exponent).
    popularity_shift:
        Rotate item popularity by this many ranks: the item that held
        rank ``r`` is replaced by ``(r + shift) mod catalog_size``.
        Models regional/working-set shift; 0 = no change.
    """

    duration: float
    rate_multiplier: float = 1.0
    zipf_exponent: float | None = None
    popularity_shift: int = 0

    def __post_init__(self) -> None:
        if not self.duration > 0:
            raise ConfigurationError(
                f"phase duration must be > 0, got {self.duration!r}"
            )
        if not self.rate_multiplier > 0:
            raise ConfigurationError(
                f"phase rate_multiplier must be > 0, got {self.rate_multiplier!r}"
            )
        if self.zipf_exponent is not None and self.zipf_exponent < 0:
            raise ConfigurationError(
                f"phase zipf_exponent must be >= 0, got {self.zipf_exponent!r}"
            )
        if not isinstance(self.popularity_shift, int) or isinstance(
            self.popularity_shift, bool
        ):
            raise ConfigurationError(
                f"phase popularity_shift must be an int, "
                f"got {self.popularity_shift!r}"
            )

    @property
    def item_key(self) -> tuple:
        """What makes this phase's *reference stream* distinct.

        Phases sharing an item key share one source (and RNG stream);
        the base key ``(None, 0)`` is the workload's own stream.
        """
        return (self.zipf_exponent, self.popularity_shift)


class PhaseSchedule:
    """Resolved timing/variant structure of a phase list.

    Built once per run (per simulation, per trace generation); the hot
    lookups — which phase covers time ``t``, when it ends, which item
    variant it uses — are array-free arithmetic on precomputed
    boundaries.  The schedule cycles: time ``t`` maps to phase
    ``t mod cycle``.
    """

    __slots__ = (
        "phases",
        "cycle",
        "_bounds",
        "multipliers",
        "variant_keys",
        "variant_of_phase",
    )

    def __init__(self, phases) -> None:
        phases = tuple(phases)
        if not phases:
            raise ConfigurationError("a phase schedule needs at least one phase")
        if not all(isinstance(p, PhaseSpec) for p in phases):
            raise ConfigurationError("phase schedule entries must be PhaseSpec")
        self.phases = phases
        bounds = []
        acc = 0.0
        for p in phases:
            acc += float(p.duration)
            bounds.append(acc)
        self.cycle = acc
        self._bounds = tuple(bounds)
        self.multipliers = tuple(float(p.rate_multiplier) for p in phases)
        # Item variants: one per distinct item key, in first-appearance
        # order.  The base key (no item change) is variant 0 when present
        # so its RNG stream keeps the unphased name.
        keys: list[tuple] = []
        base = (None, 0)
        if any(p.item_key == base for p in phases):
            keys.append(base)
        for p in phases:
            if p.item_key not in keys:
                keys.append(p.item_key)
        self.variant_keys = tuple(keys)
        self.variant_of_phase = tuple(keys.index(p.item_key) for p in phases)

    # ------------------------------------------------------------------
    @property
    def constant(self) -> bool:
        """Single phase: constant effective rate, no boundaries."""
        return len(self.phases) == 1

    @property
    def uniform_items(self) -> bool:
        """True when every phase uses the workload's own reference stream."""
        return self.variant_keys == ((None, 0),)

    def average_multiplier(self) -> float:
        """Time-averaged rate multiplier over one cycle (offered load)."""
        weighted = sum(
            float(p.duration) * m for p, m in zip(self.phases, self.multipliers)
        )
        return weighted / self.cycle

    def locate(self, t: float) -> tuple[int, float]:
        """``(phase index, absolute end time)`` of the phase covering ``t``.

        A single-phase schedule never ends (``end = inf``), which is what
        collapses the phased drivers to the constant-rate fast path.  A
        boundary instant belongs to the phase it *starts*.
        """
        if len(self.phases) == 1:
            return 0, inf
        cycles = floor(t / self.cycle)
        r = t - cycles * self.cycle
        if r >= self.cycle:  # float guard: t an exact multiple of cycle
            cycles += 1
            r = 0.0
        base = cycles * self.cycle
        for idx, bound in enumerate(self._bounds):
            if r < bound:
                return idx, base + bound
        return len(self.phases) - 1, base + self.cycle  # pragma: no cover

    def variant_at(self, t: float) -> int:
        """Item-variant index active at time ``t``."""
        if len(self.variant_keys) == 1:
            return 0
        idx, _ = self.locate(t)
        return self.variant_of_phase[idx]

    def stream_names(self, prefix: str) -> tuple[str, ...]:
        """One RNG stream name per item variant.

        The base variant keeps the unphased name (``prefix``), so a
        schedule that never reshapes items draws from the exact stream
        the unphased run would; other variants get dedicated suffixed
        streams that nothing else reads.
        """
        return tuple(
            prefix if key == (None, 0) else f"{prefix}@phase-variant{v}"
            for v, key in enumerate(self.variant_keys)
        )

    def variant_catalogs(
        self, *, catalog_size: int, zipf_exponent: float
    ) -> tuple[ZipfCatalog, ...]:
        """One catalogue per item variant (memoised; base variant shares
        the workload's own :func:`~repro.workload.zipf.shared_catalog`)."""
        return tuple(
            shared_phase_catalog(
                int(catalog_size),
                float(zipf_exponent if key[0] is None else key[0]),
                int(key[1]),
            )
            for key in self.variant_keys
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PhaseSchedule {len(self.phases)} phase(s) cycle={self.cycle:g} "
            f"variants={len(self.variant_keys)}>"
        )


# ----------------------------------------------------------------------
# Popularity rotation
# ----------------------------------------------------------------------
class ShiftedCatalog(ZipfCatalog):
    """A Zipf catalogue whose item *identities* are rotated by ``shift``.

    Rank ``r``'s probability mass belongs to item ``(r + shift) mod N``:
    the popularity law (and therefore hit-ratio physics) is unchanged,
    but the concrete hot items move — which is exactly what a regional
    or working-set shift does to a cache full of yesterday's hot set.
    """

    __slots__ = ("shift",)

    def __init__(self, num_items: int, exponent: float, shift: int) -> None:
        super().__init__(num_items, exponent)
        self.shift = int(shift) % self.num_items

    def _rotate(self, ranks):
        return (ranks + self.shift) % self.num_items

    def sample(self, rng, size=None):
        if size is not None:
            return self.sample_batch(rng, size)
        return int((super().sample(rng) + self.shift) % self.num_items)

    def sample_batch(self, rng, size):
        return self._rotate(super().sample_batch(rng, size))

    def zipf_indices(self, uniforms):
        return self._rotate(super().zipf_indices(uniforms))

    def probability(self, item: int) -> float:
        if not 0 <= item < self.num_items:
            return 0.0
        return super().probability((item - self.shift) % self.num_items)

    @property
    def probabilities(self):
        return np.roll(super().probabilities, self.shift)

    def top(self, k: int):
        return [
            ((rank + self.shift) % self.num_items, p)
            for rank, p in super().top(k)
        ]


@lru_cache(maxsize=128)
def shared_phase_catalog(
    num_items: int, exponent: float, shift: int
) -> ZipfCatalog:
    """Memoised catalogue for one ``(size, exponent, shift)`` variant.

    ``shift == 0`` returns the plain :func:`shared_catalog` instance, so
    the base variant is *the same object* the unphased path uses.
    """
    if shift % num_items == 0:
        return shared_catalog(num_items, exponent)
    return ShiftedCatalog(num_items, exponent, shift)


def phased_next_arrival(
    t: float, schedule: PhaseSchedule, phase_arrivals, rng
) -> tuple[float, int]:
    """Next arrival after ``t`` of a piecewise-homogeneous Poisson process.

    Draws a gap from the phase covering ``t``; a draw that would cross the
    phase boundary is discarded and the draw restarts *at the boundary*
    at the next phase's rate — exactly correct by memorylessness.
    Returns ``(arrival time, phase index)``.

    For a single-phase schedule ``locate`` reports ``end = inf``, so this
    is one ``phase_arrivals[0].next_gap(rng)`` call — the same draw, from
    the same stream, as the stationary driver with a pre-scaled rate
    (which is what makes the single-phase equivalence bit-exact).
    """
    while True:
        idx, end = schedule.locate(t)
        t2 = t + phase_arrivals[idx].next_gap(rng)
        if t2 > end:
            t = end
            continue
        return t2, idx


# ----------------------------------------------------------------------
# Predictor view over per-variant sources
# ----------------------------------------------------------------------
class PhasedSourceView:
    """Clock-aware facade over the per-variant reference sources.

    The ``true-distribution`` predictor (and the value-aware cache's
    ``value_fn``) ask the *source* for next-access probabilities; under
    phases the answer depends on which variant is active now, so this
    view delegates to ``sources[schedule.variant_at(clock())]``.
    """

    __slots__ = ("sources", "schedule", "clock")

    def __init__(self, sources, schedule: PhaseSchedule, clock) -> None:
        self.sources = tuple(sources)
        self.schedule = schedule
        self.clock = clock

    def current(self):
        return self.sources[self.schedule.variant_at(self.clock())]

    @property
    def catalog(self):
        return self.current().catalog

    @property
    def follow_probability(self) -> float:
        return self.current().follow_probability

    def successor(self, item: int) -> int:
        return self.current().successor(item)

    def true_next_probability(self, last_item: int, candidate: int) -> float:
        return self.current().true_next_probability(last_item, candidate)

    def true_distribution(self, last_item: int, *, top: int = 10):
        return self.current().true_distribution(last_item, top=top)
