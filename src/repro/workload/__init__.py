"""Workload substrate: catalogues, arrivals, sizes, sources, traces."""

from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    WeibullArrivals,
)
from repro.workload.ingest import IngestedTrace, ingest_common_log, ingest_csv
from repro.workload.markov_source import MarkovChainSource
from repro.workload.replay import TraceReplaySource, trace_digest
from repro.workload.sessions import (
    CLIENT_OVERRIDE_FIELDS,
    WorkloadSpec,
    generate_trace,
)
from repro.workload.sizes import (
    ExponentialSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    SizeDistribution,
)
from repro.workload.trace import TraceRecord, iter_trace, load_trace, save_trace
from repro.workload.zipf import ZipfCatalog

__all__ = [
    "ArrivalProcess",
    "CLIENT_OVERRIDE_FIELDS",
    "DeterministicArrivals",
    "ExponentialSize",
    "FixedSize",
    "IngestedTrace",
    "LognormalSize",
    "MarkovChainSource",
    "ParetoSize",
    "PoissonArrivals",
    "SizeDistribution",
    "TraceRecord",
    "TraceReplaySource",
    "WeibullArrivals",
    "WorkloadSpec",
    "ZipfCatalog",
    "generate_trace",
    "ingest_common_log",
    "ingest_csv",
    "iter_trace",
    "load_trace",
    "save_trace",
    "trace_digest",
]
