"""Trace replay: feed a recorded request stream back through the DES.

:mod:`repro.workload.trace` defines the on-disk format; this module turns a
loaded trace into something the full simulation can *drive*:

* :class:`TraceReplaySource` — a per-client demultiplexer over a merged,
  time-ordered trace.  Each client's records keep their exact recorded
  timestamps, so a replayed run issues the byte-identical request sequence
  of the recording — unlike the synthetic path, where every policy under
  comparison perturbs the RNG stream differently.
* :func:`trace_digest` — content hash of a trace file, used by the sweep
  engine's result cache so a cached trace-driven point is invalidated when
  (and only when) the trace file's bytes change.

The replay contract with :class:`repro.sim.simulation.Simulation`:

* ``SimulationConfig.trace_path`` attaches a trace; the Poisson arrival
  process is replaced by the recorded timestamps (scheduled at *absolute*
  simulation times via :meth:`Environment.at`, so replays are exact, not
  cumulative-float-drift approximations),
* item sizes recorded in the trace become the origin's size map (first
  record of an item wins; prefetch candidates outside the trace fall back
  to the workload spec's size distribution),
* everything downstream of arrival — cache lookups, prefetch planning,
  link contention — still *emerges* from the simulation, which is the
  point: one fixed workload, many competing policies.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TraceFormatError
from repro.workload.trace import TraceRecord, _check_sorted, load_trace

__all__ = ["TraceReplaySource", "trace_digest"]


def trace_digest(path: str | Path) -> str:
    """SHA-256 of the trace file's bytes (the replay cache identity)."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TraceReplaySource:
    """Per-client demultiplexer over a merged, time-ordered trace.

    Parameters
    ----------
    records:
        The merged trace (as produced by :func:`~repro.workload.sessions.
        generate_trace` or :func:`~repro.workload.trace.load_trace`); must
        be non-empty and time-ordered.
    num_clients:
        Optional override for the client count; defaults to
        ``max(client id) + 1`` so client ids map onto simulation clients
        directly.  Clients without records simply stay idle.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        *,
        num_clients: int | None = None,
    ) -> None:
        self.records: tuple[TraceRecord, ...] = tuple(records)
        if not self.records:
            raise TraceFormatError("cannot replay an empty trace")
        _check_sorted(list(self.records))
        by_client: dict[int, list[TraceRecord]] = {}
        for record in self.records:
            if record.client < 0:
                raise TraceFormatError(f"negative client id {record.client!r}")
            by_client.setdefault(record.client, []).append(record)
        inferred = max(by_client) + 1
        if num_clients is None:
            num_clients = inferred
        elif num_clients < inferred:
            raise TraceFormatError(
                f"trace references client {inferred - 1} but num_clients="
                f"{num_clients}"
            )
        self.num_clients = int(num_clients)
        self._by_client = {c: tuple(rs) for c, rs in by_client.items()}

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | Path, *, num_clients: int | None = None
                  ) -> "TraceReplaySource":
        """Load and demux a trace file (.csv or .jsonl)."""
        return cls(load_trace(path), num_clients=num_clients)

    # ------------------------------------------------------------------
    def client_records(self, client: int) -> tuple[TraceRecord, ...]:
        """That client's records, in recorded order (empty if it has none)."""
        return self._by_client.get(client, ())

    def size_map(self) -> dict[int, float]:
        """``item -> size`` from the trace, first record of an item winning
        (matching the origin's stable-size contract)."""
        sizes: dict[int, float] = {}
        for record in self.records:
            sizes.setdefault(record.item, record.size)
        return sizes

    @property
    def end_time(self) -> float:
        """Timestamp of the last record."""
        return self.records[-1].time

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceReplaySource {len(self.records)} records, "
            f"{self.num_clients} client(s), ends at {self.end_time:.3f}>"
        )
