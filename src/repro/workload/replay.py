"""Trace replay: feed a recorded request stream back through the DES.

:mod:`repro.workload.trace` defines the on-disk format; this module turns a
loaded trace into something the full simulation can *drive*:

* :class:`TraceReplaySource` — a per-client demultiplexer over a merged,
  time-ordered trace.  Each client's records keep their exact recorded
  timestamps, so a replayed run issues the byte-identical request sequence
  of the recording — unlike the synthetic path, where every policy under
  comparison perturbs the RNG stream differently.  Two modes:

  - **eager** (a record list, or ``from_file(path)``): the whole trace in
    memory, random access to any client's records;
  - **streaming** (``from_file(path, stream=True)``): one cheap summary
    pass up front (client count, size map, end time — constant memory in
    the record count), then :meth:`~TraceReplaySource.iter_merged` yields
    the records lazily from disk in their recorded (merged, time-sorted)
    order.  The simulation replays through one merged-order driver, so a
    multi-GB trace is never materialised and *nothing* is buffered — not
    even for clients with long idle gaps.

* :func:`trace_digest` — content hash of a trace file (streamed in chunks,
  never loading the file whole), used by the sweep engine's result cache
  so a cached trace-driven point is invalidated when (and only when) the
  trace file's bytes change.

The replay contract with :class:`repro.sim.simulation.Simulation`:

* ``SimulationConfig.trace_path`` attaches a trace; the Poisson arrival
  process is replaced by the recorded timestamps (scheduled at *absolute*
  simulation times via :meth:`Environment.at`, so replays are exact, not
  cumulative-float-drift approximations),
* item sizes recorded in the trace become the origin's size map (first
  record of an item wins; prefetch candidates outside the trace fall back
  to the workload spec's size distribution),
* everything downstream of arrival — cache lookups, prefetch planning,
  link contention — still *emerges* from the simulation, which is the
  point: one fixed workload, many competing policies.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TraceFormatError
from repro.workload.trace import TraceRecord, _check_sorted, iter_trace

__all__ = ["TraceReplaySource", "trace_digest"]

#: chunk size for the streaming content digest
_DIGEST_CHUNK = 1 << 20


def trace_digest(path: str | Path) -> str:
    """SHA-256 of the trace file's bytes (the replay cache identity).

    Streams the file in chunks, so hashing a multi-GB trace costs constant
    memory — the same contract as streaming replay itself.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(_DIGEST_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


class TraceReplaySource:
    """Per-client demultiplexer over a merged, time-ordered trace.

    Parameters
    ----------
    records:
        The merged trace (as produced by :func:`~repro.workload.sessions.
        generate_trace` or :func:`~repro.workload.trace.load_trace`); must
        be non-empty and time-ordered.  Use :meth:`from_file` to build one
        from disk instead (optionally streaming).
    num_clients:
        Optional override for the client count; defaults to
        ``max(client id) + 1`` so client ids map onto simulation clients
        directly.  Clients without records simply stay idle.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        *,
        num_clients: int | None = None,
    ) -> None:
        self._path: Path | None = None
        self._records: tuple[TraceRecord, ...] = tuple(records)
        if not self._records:
            raise TraceFormatError("cannot replay an empty trace")
        _check_sorted(list(self._records))
        by_client: dict[int, list[TraceRecord]] = {}
        sizes: dict[int, float] = {}
        for record in self._records:
            if record.client < 0:
                raise TraceFormatError(f"negative client id {record.client!r}")
            by_client.setdefault(record.client, []).append(record)
            sizes.setdefault(record.item, record.size)
        self._by_client = {c: tuple(rs) for c, rs in by_client.items()}
        self._sizes = sizes
        self._count = len(self._records)
        self._end_time = self._records[-1].time
        self.num_clients = self._resolve_num_clients(
            max(by_client) + 1, num_clients
        )

    @staticmethod
    def _resolve_num_clients(inferred: int, requested: int | None) -> int:
        if requested is None:
            return inferred
        if requested < inferred:
            raise TraceFormatError(
                f"trace references client {inferred - 1} but num_clients="
                f"{requested}"
            )
        return int(requested)

    # ------------------------------------------------------------------
    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        num_clients: int | None = None,
        stream: bool = False,
    ) -> "TraceReplaySource":
        """Load (or lazily attach) a trace file (.csv or .jsonl).

        ``stream=True`` keeps the records on disk: a single summary pass
        computes the client count, size map and end time, and
        :meth:`iter_merged` then re-reads the file lazily, record by
        record — the whole trace is never held in memory at once.
        """
        if not stream:
            from repro.workload.trace import load_trace

            return cls(load_trace(path), num_clients=num_clients)
        source = cls.__new__(cls)
        source._path = Path(path)
        source._records = ()
        source._by_client = {}
        sizes: dict[int, float] = {}
        count = 0
        end_time = 0.0
        max_client = -1
        for record in iter_trace(path):
            if record.client < 0:
                raise TraceFormatError(f"negative client id {record.client!r}")
            sizes.setdefault(record.item, record.size)
            count += 1
            end_time = record.time
            if record.client > max_client:
                max_client = record.client
        if count == 0:
            raise TraceFormatError("cannot replay an empty trace")
        source._sizes = sizes
        source._count = count
        source._end_time = end_time
        source.num_clients = cls._resolve_num_clients(max_client + 1, num_clients)
        return source

    @property
    def streaming(self) -> bool:
        """True when records are demultiplexed lazily from disk."""
        return self._path is not None

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """The materialised trace (eager mode only)."""
        if self.streaming:
            raise TraceFormatError(
                "streaming replay source does not materialise records; "
                "use iter_merged() or load_trace()"
            )
        return self._records

    # ------------------------------------------------------------------
    def iter_merged(self) -> Iterator[TraceRecord]:
        """All records in recorded (merged, time-sorted) order.

        The replay driver's feed: eager mode iterates the in-memory
        tuple, streaming mode re-reads the file lazily — one record in
        flight at a time, so even a client with a long idle gap never
        forces anything to be buffered.  Re-entrant: each call starts a
        fresh pass.
        """
        if self.streaming:
            return iter_trace(self._path)
        return iter(self._records)

    def client_records(self, client: int) -> tuple[TraceRecord, ...]:
        """That client's records, in recorded order (empty if it has none).

        Eager mode only — a streaming source never holds a client's
        records together; replay consumes :meth:`iter_merged` instead.
        """
        if self.streaming:
            raise TraceFormatError(
                "streaming replay source does not demultiplex per client; "
                "iterate iter_merged() or load the trace eagerly"
            )
        return self._by_client.get(client, ())

    def size_map(self) -> dict[int, float]:
        """``item -> size`` from the trace, first record of an item winning
        (matching the origin's stable-size contract)."""
        return dict(self._sizes)

    @property
    def end_time(self) -> float:
        """Timestamp of the last record."""
        return self._end_time

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "streaming" if self.streaming else "eager"
        return (
            f"<TraceReplaySource {self._count} records ({mode}), "
            f"{self.num_clients} client(s), ends at {self._end_time:.3f}>"
        )
