"""Workload trace records and file I/O.

Traces let experiments be replayed exactly (e.g. compare prefetch policies
on the identical request sequence) and serve as the interchange format for
the trace-driven example.  Two encodings:

* CSV — ``time,client,item,size`` with a header line,
* JSONL — one JSON object per record (richer; preserves extras).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TraceFormatError

__all__ = ["TraceRecord", "save_trace", "load_trace", "iter_trace"]

_CSV_HEADER = ["time", "client", "item", "size"]


@dataclass(frozen=True)
class TraceRecord:
    """One logical user request."""

    time: float
    client: int
    item: int
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceFormatError(f"negative timestamp {self.time!r}")
        if self.size <= 0:
            raise TraceFormatError(f"non-positive size {self.size!r}")


def save_trace(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records; format chosen by suffix (.csv or .jsonl). Returns count."""
    path = Path(path)
    records = list(records)
    _check_sorted(records)
    if path.suffix == ".csv":
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(_CSV_HEADER)
            for r in records:
                writer.writerow([repr(r.time), r.client, r.item, repr(r.size)])
    elif path.suffix == ".jsonl":
        with path.open("w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(asdict(r)) + "\n")
    else:
        raise TraceFormatError(
            f"unsupported trace extension {path.suffix!r}; use .csv or .jsonl"
        )
    return len(records)


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Read a trace file; validates schema and time ordering."""
    return list(iter_trace(path))


def iter_trace(path: str | Path) -> Iterator[TraceRecord]:
    """Stream a trace file record by record (constant memory).

    Yields validated :class:`TraceRecord` objects in file order, checking
    time ordering on the fly, so multi-GB traces can drive the replay
    engine without ever being materialised (:func:`load_trace` is this
    plus ``list``).
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    if path.suffix == ".csv":
        records = _read_csv(path)
    elif path.suffix == ".jsonl":
        records = _read_jsonl(path)
    else:
        raise TraceFormatError(
            f"unsupported trace extension {path.suffix!r}; use .csv or .jsonl"
        )
    last = float("-inf")
    for record in records:
        if record.time < last:
            raise TraceFormatError(
                f"trace not time-ordered: {record.time} after {last}"
            )
        last = record.time
        yield record


def _check_sorted(records: list[TraceRecord]) -> None:
    for earlier, later in zip(records, records[1:]):
        if later.time < earlier.time:
            raise TraceFormatError(
                f"trace not time-ordered: {later.time} after {earlier.time}"
            )


def _read_csv(path: Path) -> Iterator[TraceRecord]:
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}: empty trace file") from None
        if header != _CSV_HEADER:
            raise TraceFormatError(
                f"{path}: bad CSV header {header!r}; expected {_CSV_HEADER!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise TraceFormatError(f"{path}:{lineno}: expected 4 fields, got {len(row)}")
            try:
                yield TraceRecord(
                    time=float(row[0]),
                    client=int(row[1]),
                    item=int(row[2]),
                    size=float(row[3]),
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc


def _read_jsonl(path: Path) -> Iterator[TraceRecord]:
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                yield TraceRecord(
                    time=float(obj["time"]),
                    client=int(obj["client"]),
                    item=int(obj["item"]),
                    size=float(obj.get("size", 1.0)),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
