"""Least-Frequently-Used replacement with LRU tie-breaking."""

from __future__ import annotations

from repro.cache.base import Cache, CacheEntry
from repro.cache.lazyheap import LazyEvictionHeap

__all__ = ["LFUCache"]


class LFUCache(Cache):
    """Evicts the entry with the fewest accesses; ties break on recency.

    Victim selection uses a lazy-invalidation heap (the GDS pattern, see
    :mod:`repro.cache.lazyheap`): every insert/access pushes the entry's
    current ``(access_count, last_access_time, insert_time)`` rank, so an
    eviction is O(log n) amortised instead of the previous O(n) min-scan.
    The rank ends with the heap's residency ordinal, which is exactly the
    tie-break the min-scan applied implicitly (first minimal entry in dict
    insertion order) — pinned by tests, so the heap changes no victims.
    """

    policy_name = "lfu"

    def __init__(self, capacity_items=None, *, capacity_bytes=None) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._heap = LazyEvictionHeap()

    def _rank(self, entry: CacheEntry) -> tuple:
        return (
            entry.access_count,
            entry.last_access_time,
            entry.insert_time,
            self._heap.arrival(entry.key),
        )

    def _on_insert(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._rank(entry))

    def _on_access(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._rank(entry))

    def _victim(self) -> CacheEntry:
        return self._heap.pop()[-1]

    def _on_remove(self, entry: CacheEntry) -> None:
        self._heap.invalidate(entry.key)
