"""Least-Frequently-Used replacement with LRU tie-breaking."""

from __future__ import annotations

from repro.cache.base import Cache, CacheEntry

__all__ = ["LFUCache"]


class LFUCache(Cache):
    """Evicts the entry with the fewest accesses; ties break on recency.

    A linear victim scan keeps the implementation obviously correct; cache
    sizes in the experiments are ≤ a few thousand entries, far from the
    point where an O(1) frequency-bucket structure pays for itself.
    """

    policy_name = "lfu"

    def _victim(self) -> CacheEntry:
        return min(
            self._entries.values(),
            key=lambda e: (e.access_count, e.last_access_time, e.insert_time),
        )
