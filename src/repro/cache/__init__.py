"""Client cache substrate: replacement policies and interaction models."""

from repro.cache.base import Cache, CacheEntry, CacheStats
from repro.cache.clock import ClockCache
from repro.cache.fifo import FIFOCache
from repro.cache.gds import GreedyDualSizeCache
from repro.cache.interaction import CACHE_POLICIES, ValueAwareCache, make_cache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.random_policy import RandomCache

__all__ = [
    "CACHE_POLICIES",
    "Cache",
    "CacheEntry",
    "CacheStats",
    "ClockCache",
    "FIFOCache",
    "GreedyDualSizeCache",
    "LFUCache",
    "LRUCache",
    "RandomCache",
    "ValueAwareCache",
    "make_cache",
]
