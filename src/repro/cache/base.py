"""Cache abstraction shared by all replacement policies.

The paper's client caches hold ``n̄(C)`` items on average; prefetched items
*compete for space* with demand-cached ones (§2.2), and the §4 h′-estimation
algorithm needs every entry to carry a *tagged/untagged* status.  This module
provides:

* :class:`CacheEntry` — key, size, tag status, bookkeeping timestamps;
* :class:`CacheStats` — hits/misses split by demand vs prefetch origin;
* :class:`Cache` — the policy-independent machinery (lookup, insert, evict,
  capacity enforcement, stats, eviction listeners); policies implement
  ``_on_access`` / ``_on_insert`` / ``_victim``.

Capacity is counted in items to match the paper's ``n̄(C)``; a byte-capacity
mode (``capacity_bytes``) is supported for the GreedyDual-Size policy and
size-aware experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, Optional

from repro.errors import ParameterError

__all__ = ["Cache", "CacheEntry", "CacheStats"]

Key = Hashable


@dataclass(eq=False, slots=True)
class CacheEntry:
    """One cached item.

    ``tagged`` implements the §4 estimation algorithm's entry status:
    prefetched items enter *untagged* and become tagged on first access;
    demand-fetched items enter tagged.
    """

    key: Key
    size: float = 1.0
    tagged: bool = True
    prefetched: bool = False
    insert_time: float = 0.0
    last_access_time: float = 0.0
    access_count: int = 0
    #: policy scratch space (e.g. GreedyDual-Size H value, CLOCK bit)
    priority: float = 0.0


@dataclass
class CacheStats:
    """Counters maintained by every cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    prefetch_insertions: int = 0
    evictions: int = 0
    prefetch_evictions: int = 0  # evicted before ever being used
    tagged_hits: int = 0  # hits on tagged entries (feeds the h' estimator)
    untagged_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else float("nan")

    @property
    def wasted_prefetches(self) -> int:
        """Prefetched entries evicted without a single access."""
        return self.prefetch_evictions


class Cache(ABC):
    """Replacement-policy framework.

    Parameters
    ----------
    capacity_items:
        Maximum number of resident entries (``n̄(C)``); ``None`` disables the
        item bound (then ``capacity_bytes`` must be set).
    capacity_bytes:
        Optional total-size bound for size-aware policies.

    Subclasses implement the policy hooks:

    ``_on_insert(entry)``
        entry joined the cache,
    ``_on_access(entry)``
        entry was hit,
    ``_on_remove(entry)``
        entry left (eviction or explicit removal),
    ``_victim()``
        choose the entry to evict (cache is non-empty).
    """

    #: human-readable policy name, overridden by subclasses
    policy_name = "abstract"

    def __init__(
        self,
        capacity_items: Optional[int] = None,
        *,
        capacity_bytes: Optional[float] = None,
    ) -> None:
        if capacity_items is None and capacity_bytes is None:
            raise ParameterError("cache needs capacity_items or capacity_bytes")
        if capacity_items is not None and capacity_items < 1:
            raise ParameterError(f"capacity_items must be >= 1, got {capacity_items!r}")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ParameterError(f"capacity_bytes must be > 0, got {capacity_bytes!r}")
        self.capacity_items = capacity_items
        self.capacity_bytes = capacity_bytes
        self._entries: dict[Key, CacheEntry] = {}
        self._bytes_used = 0.0
        self.stats = CacheStats()
        self._eviction_listeners: list[Callable[[CacheEntry], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        """Presence test with *no* stats or policy side effects."""
        return key in self._entries

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)

    @property
    def bytes_used(self) -> float:
        return self._bytes_used

    def entry(self, key: Key) -> Optional[CacheEntry]:
        """Raw entry access (no side effects); None when absent."""
        return self._entries.get(key)

    def keys(self) -> list[Key]:
        return list(self._entries)

    def add_eviction_listener(self, listener: Callable[[CacheEntry], None]) -> None:
        """Register a callback invoked with each evicted entry."""
        self._eviction_listeners.append(listener)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, key: Key, *, now: float = 0.0) -> Optional[CacheEntry]:
        """Access ``key``: returns its entry on a hit (recording stats and
        updating tag status per §4), None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if entry.tagged:
            self.stats.tagged_hits += 1
        else:
            self.stats.untagged_hits += 1
            entry.tagged = True  # §4: "untagged entry accessed -> tag it"
        entry.access_count += 1
        entry.last_access_time = now
        self._on_access(entry)
        return entry

    def insert(
        self,
        key: Key,
        *,
        now: float = 0.0,
        size: float = 1.0,
        prefetched: bool = False,
    ) -> CacheEntry:
        """Admit ``key``; evicts per policy until the entry fits.

        Per §4: prefetched items enter *untagged*, demand-fetched items
        enter *tagged*.  Re-inserting a resident key refreshes it in place
        (an existing demand entry is not demoted by a later prefetch).
        """
        if size <= 0:
            raise ParameterError(f"item size must be > 0, got {size!r}")
        existing = self._entries.get(key)
        if existing is not None:
            existing.last_access_time = now
            if not prefetched:
                existing.tagged = True
            self._on_access(existing)
            return existing
        entry = CacheEntry(
            key=key,
            size=size,
            tagged=not prefetched,
            prefetched=prefetched,
            insert_time=now,
            last_access_time=now,
        )
        self._make_room(entry)
        self._entries[key] = entry
        self._bytes_used += entry.size
        self.stats.insertions += 1
        if prefetched:
            self.stats.prefetch_insertions += 1
        self._on_insert(entry)
        return entry

    def remove(self, key: Key) -> Optional[CacheEntry]:
        """Explicitly drop ``key`` (no eviction stats); None when absent."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes_used -= entry.size
            self._on_remove(entry)
        return entry

    def evict_one(self) -> CacheEntry:
        """Evict the policy's victim and return it."""
        if not self._entries:
            raise ParameterError("cannot evict from an empty cache")
        victim = self._victim()
        del self._entries[victim.key]
        self._bytes_used -= victim.size
        self.stats.evictions += 1
        if victim.prefetched and victim.access_count == 0:
            self.stats.prefetch_evictions += 1
        self._on_remove(victim)
        for listener in self._eviction_listeners:
            listener(victim)
        return victim

    def _make_room(self, incoming: CacheEntry) -> None:
        if self.capacity_bytes is not None and incoming.size > self.capacity_bytes:
            raise ParameterError(
                f"item of size {incoming.size} exceeds cache byte capacity "
                f"{self.capacity_bytes}"
            )
        while self._entries and (
            (self.capacity_items is not None and len(self._entries) >= self.capacity_items)
            or (
                self.capacity_bytes is not None
                and self._bytes_used + incoming.size > self.capacity_bytes
            )
        ):
            self.evict_one()

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def _on_insert(self, entry: CacheEntry) -> None:  # noqa: B027 - optional hook
        pass

    def _on_access(self, entry: CacheEntry) -> None:  # noqa: B027 - optional hook
        pass

    def _on_remove(self, entry: CacheEntry) -> None:  # noqa: B027 - optional hook
        pass

    @abstractmethod
    def _victim(self) -> CacheEntry:
        """Pick the entry to evict; the cache is guaranteed non-empty."""
