"""Uniform-random replacement.

Random eviction is the operational embodiment of the paper's **model B**
assumption: every resident entry is equally likely to go, so the expected
hit-ratio contribution forfeited per eviction is exactly the cache average
``h′/n̄(C)`` (eq. 15).  The model-comparison experiment pairs this policy
with :class:`repro.cache.interaction.ValueAwareCache` (model A).
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import Cache, CacheEntry

__all__ = ["RandomCache"]


class RandomCache(Cache):
    """Evicts a uniformly random entry."""

    policy_name = "random"

    def __init__(
        self,
        capacity_items=None,
        *,
        capacity_bytes=None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def _victim(self) -> CacheEntry:
        keys = list(self._entries)
        idx = int(self._rng.integers(len(keys)))
        return self._entries[keys[idx]]
