"""GreedyDual-Size replacement (Cao's thesis — paper reference [2]).

GreedyDual-Size generalises LRU to heterogeneous item sizes and retrieval
costs: each entry gets ``H = L + cost/size`` where ``L`` is a global
inflation value; the minimum-H entry is evicted and its H becomes the new
``L``.  With unit cost and unit size it degenerates to LRU.

Included because the paper's §1.1 cites Cao's Application-Controlled File
System as the integrated-caching baseline; the policy-ablation experiment
can swap it in to show the threshold rule is policy-agnostic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.base import Cache, CacheEntry
from repro.cache.lazyheap import LazyEvictionHeap

__all__ = ["GreedyDualSizeCache"]


class GreedyDualSizeCache(Cache):
    """Cost/size-aware eviction with lazily-deleted heap ordering.

    H ties break by push recency (smaller sequence number = older touch =
    evicted first), which matters when costs/sizes are uniform and L has
    not yet inflated.
    """

    policy_name = "gds"

    def __init__(
        self,
        capacity_items=None,
        *,
        capacity_bytes=None,
        cost_fn: Optional[Callable[[CacheEntry], float]] = None,
    ) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        #: retrieval cost model; default 1 (pure size-aware GD-Size(1))
        self._cost_fn = cost_fn or (lambda entry: 1.0)
        self._inflation = 0.0
        self._heap = LazyEvictionHeap()

    def _score(self, entry: CacheEntry) -> float:
        return self._inflation + self._cost_fn(entry) / entry.size

    def _push(self, entry: CacheEntry) -> None:
        entry.priority = self._score(entry)
        self._heap.push(entry, (entry.priority,))

    def _on_insert(self, entry: CacheEntry) -> None:
        self._push(entry)

    def _on_access(self, entry: CacheEntry) -> None:
        # Refresh H to the current inflation level (lazy: stale heap slots
        # are skipped at eviction because priority no longer matches).
        self._push(entry)

    def _victim(self) -> CacheEntry:
        priority, _seq, entry = self._heap.pop()
        self._inflation = priority
        return entry

    def _on_remove(self, entry: CacheEntry) -> None:
        self._heap.invalidate(entry.key)
