"""GreedyDual-Size replacement (Cao's thesis — paper reference [2]).

GreedyDual-Size generalises LRU to heterogeneous item sizes and retrieval
costs: each entry gets ``H = L + cost/size`` where ``L`` is a global
inflation value; the minimum-H entry is evicted and its H becomes the new
``L``.  With unit cost and unit size it degenerates to LRU.

Included because the paper's §1.1 cites Cao's Application-Controlled File
System as the integrated-caching baseline; the policy-ablation experiment
can swap it in to show the threshold rule is policy-agnostic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.cache.base import Cache, CacheEntry

__all__ = ["GreedyDualSizeCache"]


class GreedyDualSizeCache(Cache):
    """Cost/size-aware eviction with lazily-deleted heap ordering."""

    policy_name = "gds"

    def __init__(
        self,
        capacity_items=None,
        *,
        capacity_bytes=None,
        cost_fn: Optional[Callable[[CacheEntry], float]] = None,
    ) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        #: retrieval cost model; default 1 (pure size-aware GD-Size(1))
        self._cost_fn = cost_fn or (lambda entry: 1.0)
        self._inflation = 0.0
        self._heap: list[tuple[float, int, CacheEntry]] = []
        self._seq = 0
        #: latest heap sequence number per resident key; older heap slots
        #: are stale.  Also breaks H ties by recency (smaller seq = older
        #: touch = evicted first), which matters when costs/sizes are
        #: uniform and L has not yet inflated.
        self._latest: dict[object, int] = {}

    def _score(self, entry: CacheEntry) -> float:
        return self._inflation + self._cost_fn(entry) / entry.size

    def _push(self, entry: CacheEntry) -> None:
        entry.priority = self._score(entry)
        self._seq += 1
        self._latest[entry.key] = self._seq
        heapq.heappush(self._heap, (entry.priority, self._seq, entry))

    def _on_insert(self, entry: CacheEntry) -> None:
        self._push(entry)

    def _on_access(self, entry: CacheEntry) -> None:
        # Refresh H to the current inflation level (lazy: stale heap slots
        # are skipped at eviction because priority no longer matches).
        self._push(entry)

    def _victim(self) -> CacheEntry:
        while self._heap:
            priority, seq, entry = heapq.heappop(self._heap)
            if entry.key not in self._entries:
                continue  # entry already evicted/removed; stale slot
            if seq != self._latest.get(entry.key):
                continue  # superseded by a newer push (access refreshed it)
            self._inflation = priority
            return entry
        raise AssertionError("heap empty while cache non-empty")  # pragma: no cover

    def _on_remove(self, entry: CacheEntry) -> None:
        # Lazy deletion: heap slots are invalidated by the seq check above.
        self._latest.pop(entry.key, None)
