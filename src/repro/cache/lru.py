"""Least-Recently-Used replacement.

The default policy for clients in the full simulation: the classic choice
for the file/web caches the paper targets (Sprite, NFS, proxy caches — §1
references).  Implementation keeps recency order in a ``dict`` (Python
dicts preserve insertion order; ``move to end`` is delete+reinsert, O(1)).
"""

from __future__ import annotations

from repro.cache.base import Cache, CacheEntry

__all__ = ["LRUCache"]


class LRUCache(Cache):
    """Evicts the entry whose last access is oldest."""

    policy_name = "lru"

    def __init__(self, capacity_items=None, *, capacity_bytes=None) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._order: dict[object, CacheEntry] = {}

    def _touch(self, entry: CacheEntry) -> None:
        self._order.pop(entry.key, None)
        self._order[entry.key] = entry

    def _on_insert(self, entry: CacheEntry) -> None:
        self._touch(entry)

    def _on_access(self, entry: CacheEntry) -> None:
        self._touch(entry)

    def _on_remove(self, entry: CacheEntry) -> None:
        self._order.pop(entry.key, None)

    def _victim(self) -> CacheEntry:
        oldest_key = next(iter(self._order))
        return self._order[oldest_key]

    def recency_order(self) -> list[object]:
        """Keys from least to most recently used (exposed for tests)."""
        return list(self._order)
