"""Operational counterparts of the paper's interaction models A and B.

§2.2 defines the models abstractly; to *simulate* them we need concrete
eviction behaviour:

* **Model A** (*evict zero-value items*): :class:`ValueAwareCache` consults
  a value oracle (predicted access probability per key) and evicts the
  minimum-value entry — when zero-value entries exist they go first, which
  is exactly the model-A premise.
* **Model B** (*evict average-value items*): uniform-random eviction
  (:class:`repro.cache.random_policy.RandomCache`) forfeits the cache-average
  hit contribution ``h′/n̄(C)`` in expectation — exactly eq. (15).

:func:`make_cache` is the factory the simulation configuration uses.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

import numpy as np

from repro.cache.base import Cache, CacheEntry
from repro.cache.clock import ClockCache
from repro.cache.lazyheap import LazyEvictionHeap
from repro.cache.fifo import FIFOCache
from repro.cache.gds import GreedyDualSizeCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.random_policy import RandomCache
from repro.errors import ConfigurationError

__all__ = ["ValueAwareCache", "make_cache", "CACHE_POLICIES"]


class ValueAwareCache(Cache):
    """Evicts the entry with the smallest oracle value (model A semantics).

    Parameters
    ----------
    value_fn:
        Maps a key to its current value (e.g. predicted access
        probability).  Ties break LRU.

    Notes
    -----
    Victim selection uses a lazy-invalidation heap (the GDS pattern, see
    :mod:`repro.cache.lazyheap`) instead of the previous O(n) min-scan,
    which re-evaluated ``value_fn`` for *every* resident entry on *every*
    eviction — the dominant cost when the oracle is a live predictor.
    Three mechanisms keep heap ranks tracking a *changing* oracle:

    * every touch (insert/access) pushes the entry's fresh value;
    * each eviction re-validates candidates cheapest-first — a popped
      candidate whose recomputed value rose is re-ranked and the scan
      continues, so the victim's value is always current;
    * each eviction additionally re-ranks a bounded round-robin batch
      (~√n entries), so an entry whose value *dropped* while it sat high
      in the heap (e.g. a predictor moved on) is observed within O(√n)
      evictions instead of squatting until its next touch.

    Net cost per eviction is O(√n) oracle calls and O(√n log n) heap work
    versus the scan's O(n) oracle calls; model A's premise (zero-value
    entries go first) is preserved up to that bounded re-validation lag.
    """

    policy_name = "value-aware"

    def __init__(
        self,
        capacity_items=None,
        *,
        capacity_bytes=None,
        value_fn: Optional[Callable[[Hashable], float]] = None,
    ) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._value_fn = value_fn or (lambda key: 0.0)
        self._heap = LazyEvictionHeap()
        #: eviction-cycle stamps for the re-validation loop in _victim
        self._generation = 0
        self._revalidated: dict[Hashable, int] = {}
        #: round-robin queue for the bounded per-eviction refresh sweep
        self._sweep_queue: list[Hashable] = []

    def set_value_fn(self, value_fn: Callable[[Hashable], float]) -> None:
        """Swap the oracle (the controller wires the predictor in here).

        Every resident entry is re-ranked under the new oracle so the swap
        takes effect immediately, not at the entries' next touch.
        """
        self._value_fn = value_fn
        for entry in self._entries.values():
            self._heap.push(entry, self._rank(entry))

    def _rank(self, entry: CacheEntry) -> tuple:
        return (
            self._value_fn(entry.key),
            entry.last_access_time,
            entry.insert_time,
            self._heap.arrival(entry.key),
        )

    def _on_insert(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._rank(entry))

    def _on_access(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._rank(entry))

    def _refresh_batch(self) -> None:
        """Re-rank ~√n resident entries, round-robin across evictions."""
        if not self._sweep_queue:
            self._sweep_queue = list(self._entries)
        batch = max(1, int(len(self._entries) ** 0.5))
        for _ in range(min(batch, len(self._sweep_queue))):
            key = self._sweep_queue.pop()
            entry = self._entries.get(key)
            if entry is not None:
                self._heap.push(entry, self._rank(entry))

    def _victim(self) -> CacheEntry:
        self._refresh_batch()
        self._generation += 1
        while True:
            slot = self._heap.pop()
            entry = slot[-1]
            if self._revalidated.get(entry.key) == self._generation:
                # Already re-scored this eviction: its rank is current and
                # it is back at the heap minimum, so it is the victim.
                return entry
            fresh = self._value_fn(entry.key)
            self._revalidated[entry.key] = self._generation
            if fresh == slot[0]:
                return entry
            self._heap.push(
                entry,
                (fresh, entry.last_access_time, entry.insert_time,
                 self._heap.arrival(entry.key)),
            )

    def _on_remove(self, entry: CacheEntry) -> None:
        self._revalidated.pop(entry.key, None)
        self._heap.invalidate(entry.key)


#: Registry of constructible policies for configuration files / CLI.
CACHE_POLICIES = {
    "lru": LRUCache,
    "lfu": LFUCache,
    "fifo": FIFOCache,
    "clock": ClockCache,
    "random": RandomCache,
    "gds": GreedyDualSizeCache,
    "value-aware": ValueAwareCache,
}


def make_cache(
    policy: str,
    capacity_items: int,
    *,
    rng: np.random.Generator | None = None,
    value_fn: Optional[Callable[[Hashable], float]] = None,
) -> Cache:
    """Instantiate a cache by policy name.

    ``rng`` feeds the random policy (model B); ``value_fn`` feeds the
    value-aware policy (model A).  Unused arguments are ignored so callers
    can pass both and switch policies from configuration alone.
    """
    policy = policy.lower()
    if policy not in CACHE_POLICIES:
        raise ConfigurationError(
            f"unknown cache policy {policy!r}; known: {sorted(CACHE_POLICIES)}"
        )
    if policy == "random":
        return RandomCache(capacity_items, rng=rng)
    if policy == "value-aware":
        return ValueAwareCache(capacity_items, value_fn=value_fn)
    return CACHE_POLICIES[policy](capacity_items)
