"""Operational counterparts of the paper's interaction models A and B.

§2.2 defines the models abstractly; to *simulate* them we need concrete
eviction behaviour:

* **Model A** (*evict zero-value items*): :class:`ValueAwareCache` consults
  a value oracle (predicted access probability per key) and evicts the
  minimum-value entry — when zero-value entries exist they go first, which
  is exactly the model-A premise.
* **Model B** (*evict average-value items*): uniform-random eviction
  (:class:`repro.cache.random_policy.RandomCache`) forfeits the cache-average
  hit contribution ``h′/n̄(C)`` in expectation — exactly eq. (15).

:func:`make_cache` is the factory the simulation configuration uses.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

import numpy as np

from repro.cache.base import Cache, CacheEntry
from repro.cache.clock import ClockCache
from repro.cache.fifo import FIFOCache
from repro.cache.gds import GreedyDualSizeCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.random_policy import RandomCache
from repro.errors import ConfigurationError

__all__ = ["ValueAwareCache", "make_cache", "CACHE_POLICIES"]


class ValueAwareCache(Cache):
    """Evicts the entry with the smallest oracle value (model A semantics).

    Parameters
    ----------
    value_fn:
        Maps a key to its current value (e.g. predicted access
        probability).  Evaluated at eviction time so a predictor that
        re-ranks items between accesses is honoured.  Ties break LRU.
    """

    policy_name = "value-aware"

    def __init__(
        self,
        capacity_items=None,
        *,
        capacity_bytes=None,
        value_fn: Optional[Callable[[Hashable], float]] = None,
    ) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._value_fn = value_fn or (lambda key: 0.0)

    def set_value_fn(self, value_fn: Callable[[Hashable], float]) -> None:
        """Swap the oracle (the controller wires the predictor in here)."""
        self._value_fn = value_fn

    def _victim(self) -> CacheEntry:
        return min(
            self._entries.values(),
            key=lambda e: (self._value_fn(e.key), e.last_access_time, e.insert_time),
        )


#: Registry of constructible policies for configuration files / CLI.
CACHE_POLICIES = {
    "lru": LRUCache,
    "lfu": LFUCache,
    "fifo": FIFOCache,
    "clock": ClockCache,
    "random": RandomCache,
    "gds": GreedyDualSizeCache,
    "value-aware": ValueAwareCache,
}


def make_cache(
    policy: str,
    capacity_items: int,
    *,
    rng: np.random.Generator | None = None,
    value_fn: Optional[Callable[[Hashable], float]] = None,
) -> Cache:
    """Instantiate a cache by policy name.

    ``rng`` feeds the random policy (model B); ``value_fn`` feeds the
    value-aware policy (model A).  Unused arguments are ignored so callers
    can pass both and switch policies from configuration alone.
    """
    policy = policy.lower()
    if policy not in CACHE_POLICIES:
        raise ConfigurationError(
            f"unknown cache policy {policy!r}; known: {sorted(CACHE_POLICIES)}"
        )
    if policy == "random":
        return RandomCache(capacity_items, rng=rng)
    if policy == "value-aware":
        return ValueAwareCache(capacity_items, value_fn=value_fn)
    return CACHE_POLICIES[policy](capacity_items)
