"""First-In-First-Out replacement (insertion order, accesses ignored)."""

from __future__ import annotations

from collections import deque

from repro.cache.base import Cache, CacheEntry

__all__ = ["FIFOCache"]


class FIFOCache(Cache):
    """Evicts the oldest *inserted* entry regardless of use."""

    policy_name = "fifo"

    def __init__(self, capacity_items=None, *, capacity_bytes=None) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._queue: deque[CacheEntry] = deque()

    def _on_insert(self, entry: CacheEntry) -> None:
        self._queue.append(entry)

    def _on_remove(self, entry: CacheEntry) -> None:
        try:
            self._queue.remove(entry)
        except ValueError:  # pragma: no cover - entry always queued
            pass

    def _victim(self) -> CacheEntry:
        return self._queue[0]
