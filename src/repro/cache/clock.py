"""CLOCK (second-chance) replacement — FIFO with a reference bit."""

from __future__ import annotations

from repro.cache.base import Cache, CacheEntry

__all__ = ["ClockCache"]


class ClockCache(Cache):
    """Approximates LRU with O(1) state per access.

    Entries sit on a circular list; the hand sweeps, clearing reference
    bits (``entry.priority``) and evicting the first unreferenced entry.
    """

    policy_name = "clock"

    def __init__(self, capacity_items=None, *, capacity_bytes=None) -> None:
        super().__init__(capacity_items, capacity_bytes=capacity_bytes)
        self._ring: list[CacheEntry] = []
        self._hand = 0

    def _on_insert(self, entry: CacheEntry) -> None:
        # New entries start *unreferenced*: the reference bit is earned by an
        # access, so one sweep distinguishes used from merely-present pages
        # (the second chance is meaningful from the first eviction on).
        entry.priority = 0.0
        self._ring.append(entry)

    def _on_access(self, entry: CacheEntry) -> None:
        entry.priority = 1.0

    def _on_remove(self, entry: CacheEntry) -> None:
        try:
            idx = self._ring.index(entry)
        except ValueError:  # pragma: no cover
            return
        self._ring.pop(idx)
        if idx < self._hand:
            self._hand -= 1
        if self._ring:
            self._hand %= len(self._ring)
        else:
            self._hand = 0

    def _victim(self) -> CacheEntry:
        while True:
            entry = self._ring[self._hand]
            if entry.priority == 0.0:
                return entry
            entry.priority = 0.0
            self._hand = (self._hand + 1) % len(self._ring)
