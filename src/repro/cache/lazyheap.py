"""Lazy-invalidation eviction heap shared by the heap-based policies.

GreedyDual-Size introduced the pattern in this codebase: instead of an
O(n) victim scan per eviction, every policy touch pushes a fresh
``(rank..., entry)`` slot onto a min-heap and records a per-key sequence
number; eviction pops slots until one is *live* (its sequence number is
the key's latest).  Stale slots — superseded by a newer touch or belonging
to a departed entry — are skipped in O(log n) amortised time, and the heap
compacts itself whenever stale slots outnumber live ones, so memory stays
O(live keys) even on eviction-light workloads where nothing is ever
popped.

:class:`LazyEvictionHeap` factors that machinery out so LFU, the
value-aware model-A cache and GDS all share it.  The policy supplies the
rank tuple; the heap appends its own monotone sequence number, which both
detects staleness and breaks full-rank ties by push order (policies that
need the old min-scan's residency-order tie-break instead include
:meth:`arrival` as the final rank component).
"""

from __future__ import annotations

import heapq

from repro.cache.base import CacheEntry

__all__ = ["LazyEvictionHeap"]


class LazyEvictionHeap:
    """Min-heap of cache entries with per-key lazy invalidation.

    Slots are ``(*rank, seq, entry)`` tuples; ``seq`` is unique, so two
    slots never compare on the entry itself.
    """

    __slots__ = ("_heap", "_latest", "_seq", "_arrival", "_arrival_seq")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        #: latest sequence number per key; older slots for the key are stale
        self._latest: dict[object, int] = {}
        self._seq = 0
        #: residency ordinal per key (see :meth:`arrival`)
        self._arrival: dict[object, int] = {}
        self._arrival_seq = 0

    def __len__(self) -> int:
        return len(self._latest)

    def arrival(self, key: object) -> int:
        """Residency ordinal of ``key``, assigned on first use.

        Monotone per (re-)insertion — :meth:`invalidate` clears it — which
        reproduces the O(n) min-scan's implicit final tie-break: the first
        minimal entry in dict insertion order.  Policies that pin that
        behaviour put this ordinal last in their rank tuple.
        """
        ordinal = self._arrival.get(key)
        if ordinal is None:
            self._arrival[key] = ordinal = self._arrival_seq
            self._arrival_seq += 1
        return ordinal

    def push(self, entry: CacheEntry, rank: tuple) -> None:
        """(Re-)rank ``entry``; any previous slot for its key goes stale."""
        self._seq += 1
        self._latest[entry.key] = self._seq
        heapq.heappush(self._heap, (*rank, self._seq, entry))
        # Compact once stale slots dominate: without this, a hit-heavy
        # workload that never evicts would grow the heap by one slot per
        # access, unbounded.  Amortised O(1) per push.
        if len(self._heap) > 2 * len(self._latest) + 8:
            self._heap = [
                slot for slot in self._heap
                if self._latest.get(slot[-1].key) == slot[-2]
            ]
            heapq.heapify(self._heap)

    def invalidate(self, key: object) -> None:
        """Drop ``key`` (evicted/removed); its heap slots decay lazily."""
        self._latest.pop(key, None)
        self._arrival.pop(key, None)

    def pop(self) -> tuple:
        """Remove and return the live minimum slot ``(*rank, seq, entry)``.

        The key stays registered: the caller either evicts the entry (its
        ``_on_remove`` hook calls :meth:`invalidate`) or re-ranks it with
        :meth:`push`.
        """
        while self._heap:
            slot = heapq.heappop(self._heap)
            entry = slot[-1]
            if self._latest.get(entry.key) == slot[-2]:
                return slot
        raise AssertionError(
            "lazy heap empty while entries remain registered"
        )  # pragma: no cover
