"""Thin setup.py shim.

The offline environment lacks the ``wheel`` package, so PEP-660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
enables the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
