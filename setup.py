"""Package metadata and legacy-path installs.

The offline environment lacks the ``wheel`` package, so PEP-660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This
setup.py enables the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

and carries the full metadata (there is no pyproject.toml): runtime code
needs ``numpy`` everywhere and ``scipy`` in ``repro.analysis`` (Student-t
confidence intervals since PR 2, ``fsolve`` fallbacks in the Che
characteristic-time solvers since PR 6).
"""

from setuptools import find_packages, setup

setup(
    name="repro-speculative-prefetching",
    version="0.6.0",
    description=(
        "Reproduction of 'Effect of Speculative Prefetching on Network "
        "Load in Distributed Systems' (Tuah, Kumar, Venkatesh; IPDPS 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        "dev": ["pytest>=7", "pytest-benchmark>=4", "pytest-cov>=4"],
    },
)
