"""Bench: §3 threshold-rule and condition-redundancy audit."""

from benchmarks.conftest import run_and_report


def test_bench_threshold_claims(benchmark):
    result = run_and_report(benchmark, "threshold-claims", plots=False)
    _, _, rows = result.tables[0]
    assert all(row[3] == 0 and row[4] == 0 and row[5] == 0 for row in rows)
