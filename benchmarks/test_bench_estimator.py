"""Bench: §4 h' estimator accuracy while prefetching runs."""

from benchmarks.conftest import run_and_report


def test_bench_hprime_estimator(benchmark):
    result = run_and_report(benchmark, "hprime-estimator", plots=False)
    _, _, iso_rows = result.tables[0]
    # With oracle probabilities the §4 estimate recovers h' closely
    # (column 5 = |err| of the model-A estimate).
    assert all(row[5] < 0.08 for row in iso_rows)
