"""Benchmark harness helpers.

Each bench regenerates one paper artefact (figure or claim table), times it
with pytest-benchmark, and prints the rows/series the paper reports so the
run log doubles as the reproduction record (EXPERIMENTS.md is built from
these outputs).

Every benchmark run also writes ``BENCH_<NAME>.json`` (one per bench
module) into the repo root — the same files CI uploads as artifacts — so
the in-repo perf trajectory updates from plain local runs too.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments import get_experiment


def run_and_report(benchmark, experiment_id: str, *, fast: bool = True, plots: bool = True):
    """Time one experiment (single round — these are simulations, not
    microbenchmarks) and print its full report."""
    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(fast=fast), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render(plots=plots))
    return result


def pytest_sessionfinish(session, exitstatus):
    """Persist per-module benchmark stats as BENCH_<NAME>.json in-repo.

    ``--benchmark-json`` only writes where CI points it; this hook writes
    the same trajectory locally on every benchmark run (and never fails
    the session — an unwritable checkout just skips the record).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    root = Path(__file__).resolve().parent.parent
    by_module: dict[str, list] = {}
    for bench in bench_session.benchmarks:
        stem = Path(bench.fullname.split("::")[0]).stem
        label = stem.removeprefix("test_bench_").upper()
        try:
            row = bench.as_dict(include_data=False)
        except Exception:
            continue
        by_module.setdefault(label, []).append(row)
    for label, rows in sorted(by_module.items()):
        payload = {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "benchmarks": rows,
        }
        try:
            (root / f"BENCH_{label}.json").write_text(
                json.dumps(payload, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass
