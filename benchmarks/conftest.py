"""Benchmark harness helpers.

Each bench regenerates one paper artefact (figure or claim table), times it
with pytest-benchmark, and prints the rows/series the paper reports so the
run log doubles as the reproduction record (EXPERIMENTS.md is built from
these outputs).

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import get_experiment


def run_and_report(benchmark, experiment_id: str, *, fast: bool = True, plots: bool = True):
    """Time one experiment (single round — these are simulations, not
    microbenchmarks) and print its full report."""
    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(fast=fast), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render(plots=plots))
    return result
