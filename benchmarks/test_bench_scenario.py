"""Benchmarks: the declarative scenario engine end-to-end.

Two measurements:

* the ``scenario`` experiment on the committed flash-crowd catalog file at
  full fidelity — the PR-8 artefact: a phased workload (steady → 4x spike
  → recovery) run against stationary twins at the same average offered
  load, with the KPI scorecard attached.  The run must demonstrate the
  headline claim: the phased load *changes the policy ranking* relative
  to the stationary baseline (prefetching wins on averages, loses under
  the spike);
* schema + compile throughput — validating and expanding a scenario
  document is pure Python bookkeeping and must stay micro-fast (it runs
  on every CLI invocation and in the CI catalog lint).

Run:  pytest benchmarks/test_bench_scenario.py --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import get_experiment
from repro.scenario import compile_config, expand_points, load_scenario, parse_scenario
from repro.sim.sweep import CACHE_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parent.parent
FLASH_CROWD = REPO_ROOT / "scenarios" / "flash_crowd.yaml"


def test_bench_scenario_flash_crowd(benchmark):
    """Full-fidelity flash crowd: phased vs stationary ranking + KPIs."""
    experiment = get_experiment("scenario")
    experiment.scenario_path = FLASH_CROWD
    experiment.show_kpis = True
    result = benchmark.pedantic(
        lambda: experiment.run(fast=False), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render(plots=False))
    # grid table + ranking table + KPI scorecard
    assert len(result.tables) == 3
    assert any(
        name.startswith("KPI scorecard") for name, _, _ in result.tables
    )
    # the headline claim: phased load flips the stationary policy ranking
    assert any("ranking change" in note for note in result.notes)
    # audit trail: every executed point carries a resolved scenario hash
    assert result.cache_schema_version == CACHE_SCHEMA_VERSION
    assert result.scenario_hashes and all(result.scenario_hashes.values())


def test_bench_schema_compile_throughput(benchmark):
    """Validate + compile + expand the flash-crowd document in a loop."""
    spec = load_scenario(FLASH_CROWD)
    document = {
        "name": spec.name,
        "workload": {
            "num_clients": spec.workload.num_clients,
            "request_rate": spec.workload.request_rate,
            "phases": [
                {"duration": p.duration, "rate_multiplier": p.rate_multiplier}
                for p in spec.workload.phases
            ],
        },
        "system": {"bandwidth": spec.system.bandwidth},
        "sweep": {
            "replications": 2,
            "grid": {"system.policy": ["none", "threshold-dynamic", "all"]},
        },
    }

    def validate_and_expand():
        parsed = parse_scenario(document)
        compile_config(parsed)
        return expand_points(parsed)

    points = benchmark(validate_and_expand)
    assert len(points) == 3
