"""Bench: §5 load impedance — same prefetch, rising load, rising cost."""

from benchmarks.conftest import run_and_report


def test_bench_load_impedance(benchmark):
    result = run_and_report(benchmark, "load-impedance")
    assert any("C strictly increases with baseline load: True" in n
               for n in result.notes)
