"""Scale benchmark: aggregated vs per-client backend on a 100k-client run.

The tentpole claim of the scale-out work is that
``SimulationConfig(client_backend="aggregated")`` makes population size
nearly free: the whole homogeneous population collapses into one
client-class with one batched arrival process, so run time tracks the
*event* count (rate × duration) instead of the *client* count.  This
bench pins that claim on one scenario run under both backends and
records clients/sec and peak RSS into ``BENCH_SCALE.json``.

Scenario notes:

* ``request_rate`` is the population aggregate, so the event count is
  identical under both backends and any population size — only the
  bookkeeping (processes, caches, controllers, RNG streams) scales.
* ``bandwidth`` is sized to ~2.5x demand: an undersized link never
  completes a fetch inside the window and the run measures nothing.
* The aggregated run executes FIRST — ``ru_maxrss`` is a process-lifetime
  high-water mark, so only the first run's reading is its own.

Population size comes from ``REPRO_SCALE_CLIENTS`` (default 100 000; CI's
smoke pass uses a smaller value).  The speedup floor scales with it: at
the full 100k+ population the aggregated backend must deliver >= 20x the
per-client backend's clients/sec (the acceptance bar); at smoke sizes the
per-client build cost has less to amortise, so the floor relaxes to 4x.

Run:  pytest benchmarks/test_bench_scale.py --benchmark-only -s
"""

from __future__ import annotations

import os
import resource

from repro.sim.config import SimulationConfig
from repro.sim.simulation import Simulation
from repro.workload.sessions import WorkloadSpec

#: population size; CI smoke runs override this down (e.g. 20 000)
SCALE_CLIENTS = int(os.environ.get("REPRO_SCALE_CLIENTS", "100000"))

#: acceptance floor: aggregated clients/sec over per-client clients/sec
SPEEDUP_FLOOR = 20.0 if SCALE_CLIENTS >= 100_000 else 4.0

#: measured clients/sec per backend, shared across the two tests so the
#: per-client test (which runs second) can assert the speedup ratio
_RESULTS: dict[str, float] = {}


def _scale_config(backend: str) -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(
            num_clients=SCALE_CLIENTS,
            request_rate=2000.0,
            catalog_size=500,
            follow_probability=0.2,
        ),
        bandwidth=5000.0,
        policy="threshold-dynamic",
        predictor="markov",
        duration=5.0,
        warmup=1.0,
        seed=7,
        client_backend=backend,
    )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_backend(benchmark, backend: str):
    output = benchmark.pedantic(
        lambda: Simulation(_scale_config(backend)).run(),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    elapsed = benchmark.stats.stats.min
    clients_per_sec = SCALE_CLIENTS / elapsed
    _RESULTS[backend] = clients_per_sec
    benchmark.extra_info["num_clients"] = SCALE_CLIENTS
    benchmark.extra_info["clients_per_sec"] = round(clients_per_sec, 1)
    benchmark.extra_info["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    benchmark.extra_info["measured_requests"] = output.metrics.requests
    print(
        f"\n{backend}: {SCALE_CLIENTS:,} clients in {elapsed:.2f}s "
        f"= {clients_per_sec:,.0f} clients/sec, "
        f"peak RSS {_peak_rss_mb():,.1f} MB, "
        f"{output.metrics.requests} measured requests"
    )
    return output


def test_bench_scale_aggregated(benchmark):
    """Aggregated backend first: its RSS reading must be uncontaminated."""
    output = _run_backend(benchmark, "aggregated")
    # The run must have measured real traffic (completed fetches in-window)
    # and collapsed the homogeneous population into a single class.
    assert output.metrics.requests > 0
    assert len(output.client_classes) == 1
    assert output.client_classes[0].num_members == SCALE_CLIENTS


def test_bench_scale_per_client(benchmark):
    """Per-client backend on the same scenario; pins the speedup floor."""
    output = _run_backend(benchmark, "per-client")
    assert output.metrics.requests > 0
    assert "aggregated" in _RESULTS, (
        "run the whole module: the speedup ratio needs the aggregated "
        "backend's timing from test_bench_scale_aggregated"
    )
    speedup = _RESULTS["aggregated"] / _RESULTS["per-client"]
    benchmark.extra_info["aggregated_speedup"] = round(speedup, 1)
    print(f"aggregated/per-client speedup: {speedup:.1f}x "
          f"(floor {SPEEDUP_FLOOR:g}x at N={SCALE_CLIENTS:,})")
    assert speedup >= SPEEDUP_FLOOR
