"""Bench: regenerate Figure 3 (excess retrieval cost C vs n(F))."""

import numpy as np

from benchmarks.conftest import run_and_report


def test_bench_figure3(benchmark):
    result = run_and_report(benchmark, "fig3")
    for sweep in result.sweeps:
        for series in sweep:
            assert np.all(series.finite().y >= -1e-15)
