"""Benchmarks: grid sweeps through the shared-pool engine + batched workload.

Three measurements pin the PR-2 hot paths (numbers recorded in
PERFORMANCE.md):

* a 12-point full-system grid (bandwidth × cache policy) end-to-end
  through :class:`SweepExecutor`, checked bit-identical against the
  per-point replication loop it replaces;
* a warm re-run of the same grid against the on-disk result cache, which
  must skip every simulation;
* the vectorized workload generators against their per-draw equivalents.

Run:  pytest benchmarks/test_bench_sweep.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.sim import SimulationConfig, SweepExecutor, SweepPoint
from repro.sim.runner import run_simulation_replications
from repro.workload.markov_source import MarkovChainSource
from repro.workload.zipf import ZipfCatalog
from repro.workload.sessions import WorkloadSpec

#: bandwidth × cache-policy grid -> 12 operating points
GRID_BANDWIDTHS = (40.0, 50.0, 60.0, 70.0)
GRID_POLICIES = ("lru", "lfu", "value-aware")
REPLICATIONS = 1

#: draws per workload-generation round
WORKLOAD_DRAWS = 200_000


def _point_config(bandwidth: float, cache_policy: str) -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(num_clients=2, request_rate=20.0,
                              catalog_size=150, zipf_exponent=0.9,
                              follow_probability=0.6),
        bandwidth=bandwidth,
        cache_policy=cache_policy,
        cache_capacity=24,
        predictor="true-distribution",
        policy="threshold-dynamic",
        duration=30.0,
        warmup=6.0,
        seed=17,
    )


def _grid_points() -> list[SweepPoint]:
    return [
        SweepPoint(
            key=f"b={b:g}/{policy}",
            config=_point_config(b, policy),
            replications=REPLICATIONS,
        )
        for b in GRID_BANDWIDTHS
        for policy in GRID_POLICIES
    ]


def test_bench_sweep_engine_vs_per_point_loop(benchmark):
    """12-point grid through one pool vs the per-point replication loop."""
    result = benchmark.pedantic(
        lambda: SweepExecutor(jobs=1).run(_grid_points()),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert set(result.cache_misses) == {p.key for p in _grid_points()}

    # Reference: the pre-sweep shape — one runner call per point.
    t0 = time.perf_counter()
    reference = {
        pt.key: run_simulation_replications(
            pt.config, replications=REPLICATIONS, jobs=1
        )
        for pt in _grid_points()
    }
    loop_seconds = time.perf_counter() - t0

    # Bit-identity with the per-point path (the engine's core contract).
    for key, ref in reference.items():
        for name in ref.metric_names:
            assert np.array_equal(result[key][name], ref[name],
                                  equal_nan=True), (key, name)

    engine_seconds = benchmark.stats.stats.min
    print(
        f"\n12-point grid: engine {engine_seconds:.2f}s vs per-point loop "
        f"{loop_seconds:.2f}s ({loop_seconds / engine_seconds:.2f}x); "
        f"values bit-identical"
    )


def test_bench_sweep_warm_cache(benchmark, tmp_path):
    """Re-running an unchanged grid must cost ~zero simulation time."""
    engine = SweepExecutor(jobs=1, cache_dir=tmp_path)
    t0 = time.perf_counter()
    cold = engine.run(_grid_points())
    cold_seconds = time.perf_counter() - t0
    assert cold.cache_hits == ()

    warm = benchmark.pedantic(
        lambda: engine.run(_grid_points()),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert warm.cache_misses == ()
    for key in cold.results:
        for name in cold[key].metric_names:
            assert np.array_equal(warm[key][name], cold[key][name],
                                  equal_nan=True)
    warm_seconds = benchmark.stats.stats.min
    print(
        f"\nwarm result-cache re-run: {warm_seconds:.3f}s vs cold "
        f"{cold_seconds:.2f}s ({cold_seconds / warm_seconds:.0f}x)"
    )


def test_bench_workload_generation(benchmark):
    """Batched Markov/Zipf sampling vs the per-draw path (bit-identical)."""
    catalog = ZipfCatalog(2000, exponent=0.9)

    def batched():
        src = MarkovChainSource(catalog, follow_probability=0.7,
                                rng=np.random.default_rng(123))
        return src.generate(WORKLOAD_DRAWS)

    stream = benchmark.pedantic(batched, rounds=3, iterations=1,
                                warmup_rounds=1)
    batch_seconds = benchmark.stats.stats.min

    src = MarkovChainSource(catalog, follow_probability=0.7,
                            rng=np.random.default_rng(123))
    t0 = time.perf_counter()
    reference = [src.next_item() for _ in range(WORKLOAD_DRAWS)]
    scalar_seconds = time.perf_counter() - t0
    assert stream == reference

    t0 = time.perf_counter()
    zipf_batch = catalog.sample_batch(np.random.default_rng(7), WORKLOAD_DRAWS)
    zipf_batch_seconds = time.perf_counter() - t0
    rng = np.random.default_rng(7)
    t0 = time.perf_counter()
    zipf_scalar = [catalog.sample(rng) for _ in range(WORKLOAD_DRAWS)]
    zipf_scalar_seconds = time.perf_counter() - t0
    assert list(zipf_batch) == zipf_scalar

    print(
        f"\nmarkov generate({WORKLOAD_DRAWS:,}): batched "
        f"{WORKLOAD_DRAWS / batch_seconds:,.0f} draws/s vs per-draw "
        f"{WORKLOAD_DRAWS / scalar_seconds:,.0f} draws/s "
        f"({scalar_seconds / batch_seconds:.1f}x)"
    )
    print(
        f"zipf sample_batch({WORKLOAD_DRAWS:,}): "
        f"{WORKLOAD_DRAWS / zipf_batch_seconds:,.0f} draws/s vs per-draw "
        f"{WORKLOAD_DRAWS / zipf_scalar_seconds:,.0f} draws/s "
        f"({zipf_scalar_seconds / zipf_batch_seconds:.1f}x)"
    )
