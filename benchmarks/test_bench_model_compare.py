"""Bench: §6 model A vs B vs AB comparison."""

from benchmarks.conftest import run_and_report


def test_bench_model_compare(benchmark):
    result = run_and_report(benchmark, "model-compare", plots=False)
    assert any("bracketing holds for all alpha: True" in n for n in result.notes)
