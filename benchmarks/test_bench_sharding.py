"""Benchmarks: the sharding experiment + simulator throughput vs proxy count.

Two measurements:

* the ``sharding`` experiment end-to-end (the scale-out artefact: access
  time vs ``num_proxies`` × policy, plus the routing comparison);
* raw simulator throughput as the tier grows — the node refactor's cost
  check: N proxies mean N links/collectors but the *same* request count,
  so simulated-requests-per-wall-second must stay in the same ballpark
  while per-proxy utilisation falls.

Run:  pytest benchmarks/test_bench_sharding.py --benchmark-only -s
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_and_report
from repro.network.topology import TopologyConfig
from repro.sim import SimulationConfig, run_simulation
from repro.workload.sessions import WorkloadSpec

PROXY_COUNTS = (1, 2, 4)


def _tier_config(proxies: int) -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(num_clients=8, request_rate=40.0,
                              catalog_size=400, zipf_exponent=0.9,
                              follow_probability=0.7),
        bandwidth=30.0,
        cache_capacity=40,
        predictor="true-distribution",
        policy="threshold-dynamic",
        duration=60.0,
        warmup=12.0,
        seed=21,
        topology=TopologyConfig(num_proxies=proxies),
    )


def test_bench_sharding_experiment(benchmark):
    result = run_and_report(benchmark, "sharding")
    # proxy-count × policy table + the routing comparison
    assert len(result.tables) == 2
    # one prefetching-gain note per swept proxy count
    assert sum("prefetching gain" in note for note in result.notes) == 2


def test_bench_throughput_vs_proxies(benchmark):
    """Wall-clock a fixed workload across growing tiers."""
    rows = []
    for proxies in PROXY_COUNTS:
        config = _tier_config(proxies)
        if proxies == PROXY_COUNTS[-1]:
            out = benchmark.pedantic(
                lambda c=config: run_simulation(c),
                rounds=1, iterations=1, warmup_rounds=0,
            )
            seconds = benchmark.stats.stats.min
        else:
            t0 = time.perf_counter()
            out = run_simulation(config)
            seconds = time.perf_counter() - t0
        # shard conservation: the aggregate is exact, not approximate
        assert out.metrics.requests == sum(
            s.metrics.requests for s in out.per_proxy
        )
        rows.append(
            (proxies, out.metrics.requests / seconds, seconds,
             out.metrics.utilization, out.metrics.mean_access_time)
        )

    print("\nproxies  sim-req/s   wall-s     rho     t_bar")
    for proxies, rate, seconds, rho, t_bar in rows:
        print(f"{proxies:>7}  {rate:>9.0f}  {seconds:>7.2f}  {rho:>6.3f}  {t_bar:.5f}")

    # growing the tier relieves the links…
    assert rows[-1][3] < rows[0][3]
    # …and the per-node bookkeeping doesn't crater simulator throughput
    assert rows[-1][1] > 0.2 * rows[0][1]
