"""Benchmark: parallel node backend vs the serial event loop (PR 9).

One saturated eight-proxy client-affinity tier (the decoupled regime the
conservative partition shards per node), run twice on identical configs:
once on the serial loop, once with ``node_backend="parallel"`` fanning
the shards over worker processes.  The outputs must be **bit-identical**
— the backend is purely an execution knob — so the benchmark asserts
full structural equality before reporting throughput.

The speedup is only visible on a multi-core host: on a single-core box
the oversubscription guard caps the fan-out at one worker and the run
degrades to an in-process shard loop (slight overhead vs serial, same
results).  CI runs this module with ``REPRO_NODE_WORKERS=2``; the JSON
record (``BENCH_NODE_PARALLEL.json``) stores the host core count next to
the measured speedup so trajectories stay interpretable.

Env knobs:
  REPRO_NODE_WORKERS        worker-process fan-out (default 4)
  REPRO_NODE_BENCH_CLIENTS  total clients across the tier (default 64)

Run:  pytest benchmarks/test_bench_node_parallel.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
import warnings

from repro.network.topology import TopologyConfig
from repro.sim import SimulationConfig, run_simulation
from repro.sim.kpis import QuantileSketch
from repro.workload.sessions import WorkloadSpec

NUM_PROXIES = 8
NODE_WORKERS = int(os.environ.get("REPRO_NODE_WORKERS", "4"))
NUM_CLIENTS = int(os.environ.get("REPRO_NODE_BENCH_CLIENTS", "64"))


def _tier_config() -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(
            num_clients=NUM_CLIENTS,
            request_rate=5.0 * NUM_CLIENTS,  # ~40 req/s per proxy uplink
            catalog_size=600,
            zipf_exponent=0.9,
            follow_probability=0.7,
        ),
        bandwidth=50.0,
        cache_capacity=40,
        predictor="markov",
        policy="threshold-dynamic",
        duration=120.0,
        warmup=20.0,
        seed=17,
        topology=TopologyConfig(num_proxies=NUM_PROXIES),
    )


def _canon(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canon(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, QuantileSketch):
        return (value.zeros, tuple(sorted(value.bins.items())), value.count,
                value.total, value.min, value.max)
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return value


def test_bench_node_parallel_vs_serial(benchmark):
    serial_config = _tier_config()
    parallel_config = dataclasses.replace(
        serial_config, node_backend="parallel", node_workers=NODE_WORKERS
    )

    t0 = time.perf_counter()
    serial_out = run_simulation(serial_config)
    serial_s = time.perf_counter() - t0

    with warnings.catch_warnings():
        # single-core hosts: the oversubscription guard caps the fan-out
        warnings.simplefilter("ignore", RuntimeWarning)
        parallel_out = benchmark.pedantic(
            lambda: run_simulation(parallel_config),
            rounds=1, iterations=1, warmup_rounds=0,
        )
    parallel_s = benchmark.stats.stats.min

    # the backend is an execution knob: results must be bit-identical
    assert _canon(parallel_out) == _canon(serial_out)

    cpus = os.cpu_count() or 1
    speedup = serial_s / parallel_s
    requests = serial_out.metrics.requests
    print(f"\n{NUM_PROXIES} proxies, {NUM_CLIENTS} clients, "
          f"{requests} measured requests, host cpus={cpus}")
    print("backend    workers  wall-s   clients/s  sim-req/s")
    print(f"serial     {1:>7}  {serial_s:>6.2f}  {NUM_CLIENTS / serial_s:>9.1f}"
          f"  {requests / serial_s:>9.0f}")
    print(f"parallel   {NODE_WORKERS:>7}  {parallel_s:>6.2f}"
          f"  {NUM_CLIENTS / parallel_s:>9.1f}  {requests / parallel_s:>9.0f}")
    print(f"speedup    {speedup:.2f}x")

    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["num_proxies"] = NUM_PROXIES
    benchmark.extra_info["num_clients"] = NUM_CLIENTS
    benchmark.extra_info["node_workers_requested"] = NODE_WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_s, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["clients_per_second_parallel"] = round(
        NUM_CLIENTS / parallel_s, 2
    )
    benchmark.extra_info["bit_identical"] = True

    # a multi-core host with a real fan-out must actually win; a capped
    # single-core run only has to stay in the serial ballpark
    if cpus >= 2 * NODE_WORKERS and NODE_WORKERS >= 4:
        assert speedup >= 1.8
    elif cpus == 1:
        assert speedup > 0.5
