"""Bench: full-system prefetch-policy ablation (the §1 motivation)."""

from benchmarks.conftest import run_and_report


def test_bench_policy_ablation(benchmark):
    result = run_and_report(benchmark, "policy-ablation", plots=False)
    _, _, rows = result.tables[0]
    t = {row[0]: row[1] for row in rows}
    # the paper's rule must beat doing nothing on this predictable workload
    assert t["threshold-dynamic"] < t["none"]
