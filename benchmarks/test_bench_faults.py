"""Benchmark: fault injection & elastic re-sharding overhead (PR 10).

Two measurements on one cooperative four-proxy tier:

1. **Fault-path overhead** — the same config run fault-free and with a
   proxy-fail/proxy-recover schedule.  The fault runtime is installed
   only when a schedule is present, so the fault-free run doubles as the
   zero-overhead baseline; the benchmark records how much wall time the
   drain + re-shard + migration machinery adds.

2. **Migration-cost contrast** — cold restart vs cooperative warm
   migration on the identical schedule.  The JSON record stores the
   recovery-segment origin bytes of each mode so the "warm transfers
   over peer links replace origin refetches" claim has a perf
   trajectory in CI, not just a one-off experiment table.

Run:  pytest benchmarks/test_bench_faults.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses
import time

from repro.network.topology import CooperationConfig, TopologyConfig
from repro.sim import SimulationConfig, run_simulation
from repro.sim.faults import FaultEvent, FaultSchedule
from repro.workload.sessions import WorkloadSpec

DURATION = 90.0
FAIL_AT = DURATION / 3.0
RECOVER_AT = FAIL_AT + DURATION / 18.0  # short outage: caches still cold


def _tier_config() -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(
            num_clients=32,
            request_rate=64.0,
            catalog_size=300,
            zipf_exponent=0.9,
            follow_probability=0.7,
        ),
        bandwidth=35.0,
        cache_capacity=24,
        predictor="markov",
        policy="threshold-dynamic",
        duration=DURATION,
        warmup=15.0,
        seed=29,
        topology=TopologyConfig(
            num_proxies=4,
            routing="item-hash",
            cooperation=CooperationConfig(mode="owner-probe"),
        ),
    )


def _schedule(migration: str) -> FaultSchedule:
    return FaultSchedule(
        events=(
            FaultEvent(time=FAIL_AT, kind="proxy-fail", node=1),
            FaultEvent(time=RECOVER_AT, kind="proxy-recover", node=1),
        ),
        migration=migration,
    )


def _recovery_origin_bytes(output) -> float:
    for segment in output.kpis.fault_segments():
        if segment.kind == "proxy-recover":
            return segment.origin_bytes
    raise AssertionError("no recovery segment in fault timeline")


def test_bench_fault_injection(benchmark):
    base = _tier_config()

    t0 = time.perf_counter()
    clean_out = run_simulation(base)
    clean_s = time.perf_counter() - t0

    cold_config = dataclasses.replace(base, faults=_schedule("cold"))
    t0 = time.perf_counter()
    cold_out = run_simulation(cold_config)
    cold_s = time.perf_counter() - t0

    warm_config = dataclasses.replace(base, faults=_schedule("cooperative"))
    warm_out = benchmark.pedantic(
        lambda: run_simulation(warm_config),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    warm_s = benchmark.stats.stats.min

    # the clean run must not pay for the fault machinery at all
    assert not clean_out.kpis.fault_timeline
    assert len(warm_out.kpis.fault_timeline) == 3  # fail, recover, end

    end = warm_out.kpis.fault_timeline[-1]
    assert end.migrated_items > 0  # cooperative mode actually migrated
    assert cold_out.kpis.fault_timeline[-1].migrated_items == 0

    cold_refetch = _recovery_origin_bytes(cold_out)
    warm_refetch = _recovery_origin_bytes(warm_out)

    print(f"\nfault-free    {clean_s:>6.2f}s")
    print(f"cold restart  {cold_s:>6.2f}s  "
          f"recovery-segment origin bytes {cold_refetch:.0f}")
    print(f"cooperative   {warm_s:>6.2f}s  "
          f"recovery-segment origin bytes {warm_refetch:.0f}  "
          f"({end.migrated_items} items / {end.migrated_bytes:.0f} bytes "
          f"migrated over peer links)")
    print(f"fault-path overhead {warm_s / clean_s:.2f}x of fault-free wall")

    benchmark.extra_info["clean_seconds"] = round(clean_s, 4)
    benchmark.extra_info["cold_seconds"] = round(cold_s, 4)
    benchmark.extra_info["cooperative_seconds"] = round(warm_s, 4)
    benchmark.extra_info["overhead_vs_clean"] = round(warm_s / clean_s, 3)
    benchmark.extra_info["migrated_items"] = end.migrated_items
    benchmark.extra_info["migrated_bytes"] = round(end.migrated_bytes, 1)
    benchmark.extra_info["cold_recovery_origin_bytes"] = round(cold_refetch, 1)
    benchmark.extra_info["warm_recovery_origin_bytes"] = round(warm_refetch, 1)

    # the drain/re-shard path is event-loop work, not a second simulator:
    # it must stay within a small constant factor of the fault-free run
    assert warm_s < 3.0 * clean_s
