"""Bench: regenerate Figure 1 (p_th vs item size, nine bandwidths)."""

from benchmarks.conftest import run_and_report


def test_bench_figure1(benchmark):
    result = run_and_report(benchmark, "fig1")
    assert len(result.sweeps) == 2
    # anchor: the Figure 2/3 operating point sits on this figure
    assert abs(result.sweeps[0].get("b = 50").y_at(1.0) - 0.6) < 1e-12
