"""Bench: DES-vs-closed-form validation plus the batch-arrival caveat."""

from benchmarks.conftest import run_and_report


def test_bench_sim_vs_analytic(benchmark):
    result = run_and_report(benchmark, "sim-vs-analytic", plots=False)
    _, _, rows = result.tables[0]
    # worst relative error across all operating points and quantities
    assert max(row[-1] for row in rows) < 0.15
