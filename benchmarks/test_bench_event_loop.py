"""Microbenchmark: raw DES event-loop throughput (timeouts processed/sec).

Unlike the other benches (which time whole paper artefacts) this pins the
*kernel* hot path in isolation, so future changes to ``des/environment.py``
or ``des/events.py`` have a stable perf baseline to compare against: a
single process yielding a long chain of timeouts measures exactly the
``timeout() → heap → run-loop dispatch → _resume`` cycle and nothing else.

Reference points (1-core container, Python 3.11): the seed event loop
processed ~0.77M timeouts/sec; the inlined run() loop + fast timeout path
of PR 1 lifted that to ~1.3M/sec (see PERFORMANCE.md).

Run:  pytest benchmarks/test_bench_event_loop.py --benchmark-only -s
"""

from __future__ import annotations

from repro.des.environment import Environment

#: Events per measured run — large enough that per-run setup is noise.
NUM_TIMEOUTS = 100_000


def _drain_timeout_chain() -> float:
    env = Environment()

    def ticker(env, count):
        for _ in range(count):
            yield env.timeout(1.0)

    env.process(ticker(env, NUM_TIMEOUTS))
    env.run()
    return env.now


def test_bench_event_loop_throughput(benchmark):
    final_time = benchmark.pedantic(
        _drain_timeout_chain, rounds=5, iterations=1, warmup_rounds=1
    )
    # The chain must actually have run to completion.
    assert final_time == float(NUM_TIMEOUTS)
    per_second = NUM_TIMEOUTS / benchmark.stats.stats.min
    print(f"\nevent-loop throughput: {per_second:,.0f} timeouts/sec (best round)")
