"""Benchmark: analytically-screened hybrid sweep vs full simulation.

The PR-6 acceptance measurement (numbers recorded in PERFORMANCE.md and
BENCH_ANALYTIC_SCREEN.json): on a 200-point grid,

* the screened run's wall-clock sits an order of magnitude below the full
  simulation of the same grid,
* every simulated-frontier metric is bit-identical to the unscreened
  engine's values for those points,
* the Che predictor stays within its ~1 ms/point budget.

Run:  pytest benchmarks/test_bench_analytic_screen.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.sim import AnalyticScreen, SimulationConfig, SweepExecutor, SweepPoint
from repro.workload.sessions import WorkloadSpec

#: 50 bandwidths x 4 capacities = 200 operating points, 4 long series --
#: the shape the screen is built for (top-k + anchors amortise over 50
#: points per series).
GRID_BANDWIDTHS = tuple(float(b) for b in np.linspace(25.0, 74.0, 50))
GRID_CAPACITIES = (8, 16, 28, 40)


def _point_config(bandwidth: float, capacity: int) -> SimulationConfig:
    return SimulationConfig(
        workload=WorkloadSpec(num_clients=2, request_rate=15.0,
                              catalog_size=80, zipf_exponent=0.9),
        bandwidth=bandwidth,
        cache_capacity=capacity,
        policy="none",
        duration=15.0,
        warmup=4.0,
        seed=31,
    )


def _grid_points() -> list[SweepPoint]:
    return [
        SweepPoint(
            key=f"b{bandwidth:g}/C{capacity}",
            config=_point_config(bandwidth, capacity),
            replications=1,
            meta={"x": bandwidth, "cap": capacity},
        )
        for capacity in GRID_CAPACITIES
        for bandwidth in GRID_BANDWIDTHS
    ]


def test_bench_analytic_screen_vs_full_grid(benchmark):
    """200-point screened sweep vs simulating the whole grid."""
    points = _grid_points()
    screen = AnalyticScreen(keep=2, by="cap")

    # Warm the process (imports, first-build caches) outside both timed
    # sections so the comparison is simulation work, not interpreter
    # start-up attributed to whichever run goes first.
    SweepExecutor(jobs=1).run(points[:1])

    screened = benchmark.pedantic(
        lambda: SweepExecutor(jobs=1).run(points, screen=screen),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    screened_seconds = benchmark.stats.stats.min

    t0 = time.perf_counter()
    full = SweepExecutor(jobs=1).run(points)
    full_seconds = time.perf_counter() - t0

    # The engine's screening contract: the simulated frontier is
    # bit-identical to the same points in the unscreened run.
    simulated = screened.simulated_keys()
    assert simulated and screened.analytic_keys()
    for key in simulated:
        for name in full[key].metric_names:
            assert np.array_equal(screened[key][name], full[key][name],
                                  equal_nan=True), (key, name)

    predictor_costs = np.asarray(
        [pred.cost_seconds for pred in screened.predictions.values()]
    )
    speedup = full_seconds / screened_seconds
    benchmark.extra_info["grid_points"] = len(points)
    benchmark.extra_info["simulated_points"] = len(simulated)
    benchmark.extra_info["full_grid_seconds"] = round(full_seconds, 3)
    benchmark.extra_info["speedup_vs_full"] = round(speedup, 2)
    benchmark.extra_info["predictor_ms_mean"] = round(
        1e3 * float(predictor_costs.mean()), 4
    )
    benchmark.extra_info["predictor_ms_max"] = round(
        1e3 * float(predictor_costs.max()), 4
    )
    print(
        f"\n{len(points)}-point grid: screened {screened_seconds:.2f}s "
        f"({len(simulated)} simulated + {len(screened.analytic_keys())} "
        f"analytic) vs full {full_seconds:.2f}s ({speedup:.1f}x); "
        f"simulated frontier bit-identical; predictor "
        f"{1e3 * predictor_costs.mean():.3f} ms/point mean, "
        f"{1e3 * predictor_costs.max():.3f} ms max"
    )
    # Loose floor so loaded CI runners do not flake; the measured number
    # (PERFORMANCE.md) sits well above 10x.
    assert speedup >= 5.0
    assert float(predictor_costs.mean()) < 5e-3


def test_bench_predictor_throughput(benchmark):
    """Raw AnalyticPredictor throughput over one grid pass (cold caches)."""
    from repro.analysis.cachemodel import AnalyticPredictor

    points = _grid_points()

    def predict_all():
        predictor = AnalyticPredictor()  # cold memo: every solve real
        return [predictor.predict(pt.config) for pt in points]

    predictions = benchmark.pedantic(predict_all, rounds=3, iterations=1,
                                     warmup_rounds=1)
    per_point_ms = 1e3 * benchmark.stats.stats.min / len(points)
    assert len(predictions) == len(points)
    assert all(np.isfinite(p.hit_ratio) for p in predictions)
    benchmark.extra_info["points"] = len(points)
    benchmark.extra_info["ms_per_point"] = round(per_point_ms, 4)
    print(
        f"\npredictor grid pass: {len(points)} points in "
        f"{benchmark.stats.stats.min * 1e3:.1f} ms "
        f"({per_point_ms:.3f} ms/point)"
    )
    assert per_point_ms < 5.0
