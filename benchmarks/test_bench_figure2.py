"""Bench: regenerate Figure 2 (access improvement G vs n(F))."""

import numpy as np

from benchmarks.conftest import run_and_report


def test_bench_figure2(benchmark):
    result = run_and_report(benchmark, "fig2")
    # The headline shape: the p = p_th curve is identically zero, curves
    # above/below are sign-constant (checked in detail by the test suite).
    panel0 = result.sweeps[0]
    flat = panel0.get("p = 0.6").finite().y
    assert np.allclose(flat, 0.0, atol=1e-12)
