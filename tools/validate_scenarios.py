#!/usr/bin/env python3
"""Scenario-catalog lint: every ``scenarios/*.yaml`` must fully compile.

For each catalog document this

1. loads + validates it through the scenario schema
   (:func:`repro.scenario.load_scenario` — precise, path-qualified
   errors),
2. compiles it to a :class:`~repro.sim.config.SimulationConfig`
   (cross-field rules: duration vs warmup, policy/predictor names, ...),
3. expands its sweep grid into sweep points (every grid override applies
   cleanly) and verifies each point's config is ``scenario_hash``-able —
   the property the result cache and the experiment audit trail rely on.

Nothing is simulated, so the whole catalog lints in well under a second.

Usage::

    PYTHONPATH=src python tools/validate_scenarios.py [FILE ...]

With no arguments the whole ``scenarios/`` catalog is linted.  Exit
status 0 when every document passes, 1 otherwise — so CI can gate on it.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenario import compile_config, expand_points, load_scenario  # noqa: E402
from repro.scenario.schema import ScenarioError  # noqa: E402
from repro.sim.sweep import scenario_hash  # noqa: E402


def lint(path: Path) -> list[str]:
    """Return human-readable problems for one scenario document."""
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    try:
        spec = load_scenario(path)
    except ScenarioError as exc:
        return [f"{rel}: {exc}"]
    problems: list[str] = []
    try:
        compile_config(spec)
        points = expand_points(spec)
    except ScenarioError as exc:
        return [f"{rel}: {exc}"]
    for point in points:
        try:
            scenario_hash(
                point.config,
                replications=point.replications,
                base_seed=point.base_seed
                if point.base_seed is not None
                else point.config.seed,
            )
        except Exception as exc:  # unpicklable config: cache-opaque point
            problems.append(
                f"{rel}: point {point.key!r} is not scenario_hash-able: {exc}"
            )
    if not problems:
        phased = "phased" if spec.workload.phases else "stationary"
        backend = (
            f", {spec.system.node_backend} node backend"
            if spec.system.node_backend
            else ""
        )
        faults = ""
        if spec.faults is not None:
            migration = spec.faults.migration or "cold"
            faults = (
                f", {len(spec.faults.events)} fault event(s) "
                f"({migration} migration)"
            )
        print(
            f"ok: {rel} -> scenario {spec.name!r}, {len(points)} point(s), "
            f"{phased} workload{backend}{faults}"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args:
        files = [Path(a) for a in args]
    else:
        files = sorted((REPO_ROOT / "scenarios").glob("*.yaml"))
        files += sorted((REPO_ROOT / "scenarios").glob("*.yml"))
        files += sorted((REPO_ROOT / "scenarios").glob("*.json"))
    if not files:
        print("no scenario files found", file=sys.stderr)
        return 1
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: no such file")
            continue
        problems += lint(path)
    if problems:
        print("\nSCENARIO LINT FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"scenario lint passed ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
