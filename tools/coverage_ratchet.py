#!/usr/bin/env python3
"""Coverage ratchet: per-package line-coverage floors, enforced in CI.

Reads a ``coverage.json`` report (pytest-cov's ``--cov-report=json``)
and compares each package's aggregate line coverage against the floors
committed in ``tools/coverage_baseline.json``.  A package below its
floor fails the build; a package comfortably above it prints a nudge to
raise the floor.  The ratchet only ever tightens: raise a floor when
coverage grows, never lower one to make a PR pass.

pytest-cov is a CI-only dependency (the offline dev image ships without
it), which is exactly why the floors live in a committed file instead of
someone's shell history.

Usage::

    PYTHONPATH=src python -m pytest tests/ --cov=repro --cov-report=json
    python tools/coverage_ratchet.py [coverage.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "coverage_baseline.json"
#: a package this far above its floor earns a raise-the-floor nudge
RAISE_NUDGE = 10.0


def package_coverage(report: dict, prefix: str) -> tuple[int, int]:
    """Return (covered, total) statement counts for one path prefix."""
    covered = total = 0
    for filename, data in report.get("files", {}).items():
        # coverage.json keys are repo-relative, src-relative or absolute
        # depending on invocation; match on the normalized tail
        name = filename.replace("\\", "/")
        if prefix in name or prefix.removeprefix("src/") in name:
            summary = data["summary"]
            covered += summary["covered_lines"]
            total += summary["num_statements"]
    return covered, total


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    report_path = Path(args[0]) if args else REPO_ROOT / "coverage.json"
    if not report_path.exists():
        print(f"coverage ratchet: no report at {report_path}", file=sys.stderr)
        return 1
    report = json.loads(report_path.read_text(encoding="utf-8"))
    floors = {
        prefix: floor
        for prefix, floor in json.loads(
            BASELINE.read_text(encoding="utf-8")
        ).items()
        if not prefix.startswith("_")
    }
    failures: list[str] = []
    for prefix, floor in sorted(floors.items()):
        covered, total = package_coverage(report, prefix)
        if total == 0:
            failures.append(f"{prefix}: no measured files in the report")
            continue
        pct = 100.0 * covered / total
        status = "ok" if pct >= floor else "BELOW FLOOR"
        print(
            f"{status:>11}: {prefix:<24} {pct:6.2f}% "
            f"({covered}/{total} statements, floor {floor:.1f}%)"
        )
        if pct < floor:
            failures.append(
                f"{prefix}: {pct:.2f}% < committed floor {floor:.1f}%"
            )
        elif pct >= floor + RAISE_NUDGE:
            print(
                f"             (consider raising the floor toward "
                f"{pct:.0f}% in {BASELINE.name})"
            )
    if failures:
        print("\nCOVERAGE RATCHET FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("coverage ratchet passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
