#!/usr/bin/env python3
"""Docs-rot gate: dead-link check + smoke-run of documented examples.

Two checks, both over the repository's markdown surface (top-level
``*.md`` plus ``docs/**/*.md``):

1. **Dead links** — every relative markdown link / image target must
   resolve to an existing file or directory (external ``http(s)://``,
   ``mailto:`` and pure in-page ``#anchor`` links are skipped; a link with
   an anchor, ``guide.md#traces``, is checked for its file part).
2. **Documented examples run** — every ``examples/*.py`` script that any
   markdown file references is executed (with ``PYTHONPATH=src``) and must
   exit 0.  Scripts nobody documents are reported but not run: the gate
   protects what the docs promise.

Usage::

    python tools/check_docs.py            # links + run documented examples
    python tools/check_docs.py --links-only   # fast (used by the test suite)

Exit status 0 when everything passes, 1 otherwise — so CI can gate on it.
No third-party dependencies: this must run anywhere the repo checks out.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links/images: [text](target) / ![alt](target)
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks (links inside them are code, not navigation)
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
#: references to example scripts anywhere in the text (prose or code)
_EXAMPLE_RE = re.compile(r"examples/[A-Za-z0-9_]+\.py")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").rglob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(files: list[Path]) -> list[str]:
    """Return human-readable problems for unresolvable relative links."""
    problems: list[str] = []
    for md in files:
        text = _FENCE_RE.sub("", md.read_text(encoding="utf-8"))
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO_ROOT)}: dead link -> {target}"
                )
    return problems


def documented_examples(files: list[Path]) -> list[Path]:
    """Example scripts any markdown file references (deduped, sorted)."""
    referenced: set[str] = set()
    for md in files:
        referenced.update(_EXAMPLE_RE.findall(md.read_text(encoding="utf-8")))
    return sorted(
        p for name in referenced if (p := REPO_ROOT / name).is_file()
    )


def run_examples(scripts: list[Path]) -> list[str]:
    """Smoke-run each script; return problems for non-zero exits."""
    problems: list[str] = []
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    for script in scripts:
        rel = script.relative_to(REPO_ROOT)
        print(f"running {rel} ...", flush=True)
        try:
            proc = subprocess.run(
                [sys.executable, str(script)],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=1200,
            )
        except subprocess.TimeoutExpired:
            # A hung example is a docs problem, not a tooling crash: report
            # it alongside everything else instead of losing the summary.
            problems.append(f"{rel}: timed out after 1200s")
            continue
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.strip().splitlines()[-12:])
            problems.append(f"{rel}: exit {proc.returncode}\n{tail}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only",
        action="store_true",
        help="skip running example scripts (fast dead-link pass)",
    )
    args = parser.parse_args(argv)

    files = markdown_files()
    print(f"checking {len(files)} markdown file(s) for dead links")
    problems = check_links(files)

    examples = documented_examples(files)
    undocumented = sorted(
        set((REPO_ROOT / "examples").glob("*.py")) - set(examples)
    )
    for script in undocumented:
        print(f"note: {script.relative_to(REPO_ROOT)} is not referenced by "
              f"any markdown file")
    if not args.links_only:
        print(f"smoke-running {len(examples)} documented example script(s)")
        problems += run_examples(examples)

    if problems:
        print("\nDOCS CHECK FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
